/// \file pareto.hpp
/// Pareto-frontier extraction over the three objectives a design-space
/// sweep trades off: request latency (minimize), SDRAM utilization
/// (maximize) and gate count (minimize, the Table IV area model). The
/// frontier is the set of sweep points no other point beats on every
/// objective at once — the only points worth plotting, whatever weight
/// a reader puts on each axis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace annoc::explore {

/// One sweep point projected onto the objectives, tagged with its job
/// index (the join key back into merged.jsonl) and the override set
/// that produced it.
struct ParetoPoint {
  std::uint64_t job = 0;
  std::string point;          ///< canonical override JSON (provenance)
  double latency_all = 0.0;   ///< minimize: mean request latency, cycles
  double utilization = 0.0;   ///< maximize: useful-beat bus utilization
  double gates = 0.0;         ///< minimize: 3x3 NoC gate count
};

/// True when `a` dominates `b`: at least as good on every objective
/// and strictly better on one.
[[nodiscard]] bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// Extract the non-dominated subset, returned sorted by job index.
/// Order-independent: any permutation of `points` yields the same
/// frontier. Points with identical objectives keep only the lowest job
/// index, so a resumed or sharded sweep reproduces the frontier
/// byte-for-byte.
[[nodiscard]] std::vector<ParetoPoint> pareto_frontier(
    std::vector<ParetoPoint> points);

}  // namespace annoc::explore
