#include "explore/pareto.hpp"

#include <algorithm>

namespace annoc::explore {
namespace {

[[nodiscard]] bool same_objectives(const ParetoPoint& a,
                                   const ParetoPoint& b) {
  return a.latency_all == b.latency_all && a.utilization == b.utilization &&
         a.gates == b.gates;
}

}  // namespace

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  if (a.latency_all > b.latency_all) return false;
  if (a.utilization < b.utilization) return false;
  if (a.gates > b.gates) return false;
  return a.latency_all < b.latency_all || a.utilization > b.utilization ||
         a.gates < b.gates;
}

std::vector<ParetoPoint> pareto_frontier(std::vector<ParetoPoint> points) {
  // Job order first: duplicate-objective groups then deterministically
  // keep their lowest job index, independent of input order.
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.job < b.job;
            });
  std::vector<ParetoPoint> frontier;
  for (const ParetoPoint& p : points) {
    bool beaten = false;
    for (const ParetoPoint& q : points) {
      if (&q == &p) continue;
      if (dominates(q, p) || (same_objectives(q, p) && q.job < p.job)) {
        beaten = true;
        break;
      }
    }
    if (!beaten) frontier.push_back(p);
  }
  return frontier;
}

}  // namespace annoc::explore
