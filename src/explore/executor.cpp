#include "explore/executor.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <fstream>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/area_model.hpp"
#include "explore/pareto.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/metrics_export.hpp"
#include "scenario/scenario.hpp"
#include "traffic/application.hpp"

namespace annoc::explore {
namespace {

using scenario::JsonKind;
using scenario::JsonMember;
using scenario::JsonValue;

void mkdir_p(const std::string& path) {
  std::string prefix;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i != path.size() && path[i] != '/') continue;
    prefix.assign(path, 0, i);
    if (prefix.empty() || prefix == ".") continue;
    if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) {
      throw std::runtime_error("cannot create directory '" + prefix +
                               "': " + std::strerror(errno));
    }
  }
  if (!path.empty() && path.back() != '/') {
    if (::mkdir(path.c_str(), 0777) != 0 && errno != EEXIST) {
      throw std::runtime_error("cannot create directory '" + path +
                               "': " + std::strerror(errno));
    }
  }
}

void write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("cannot write '" + path + "'");
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

/// Replace `path` with `text` atomically: readers see the old or the
/// new content, never a torn file. Concurrent finishers write
/// identical bytes, so last-rename-wins is harmless.
void replace_file(const std::string& path, const std::string& text,
                  const std::string& worker_id) {
  const std::string tmp = path + ".tmp." + worker_id;
  write_file(tmp, text);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("cannot rename '" + tmp + "'");
  }
}

/// Publish `text` at `path` only if nothing is there yet (link(2) is
/// atomic even over NFS). Returns false when another process won.
[[nodiscard]] bool publish_first(const std::string& path,
                                 const std::string& text,
                                 const std::string& worker_id) {
  const std::string tmp = path + ".tmp." + worker_id;
  write_file(tmp, text);
  const bool won = ::link(tmp.c_str(), path.c_str()) == 0;
  if (!won && errno != EEXIST) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("cannot publish '" + path + "'");
  }
  ::unlink(tmp.c_str());
  return won;
}

[[nodiscard]] std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

[[nodiscard]] std::string chunk_claim_path(const std::string& out_dir,
                                           std::uint64_t chunk_id) {
  char name[32];
  std::snprintf(name, sizeof(name), "chunk_%06llu.claim",
                static_cast<unsigned long long>(chunk_id));
  return out_dir + "/claims/" + name;
}

/// Claim a chunk for `worker_id`. O_EXCL creation is the arbitration:
/// exactly one process ever succeeds, everyone else reads the owner.
/// A resuming process adopts its own previous claims (same id); a
/// foreign claim is permanently someone else's work.
[[nodiscard]] bool claim_chunk(const std::string& path,
                               const std::string& worker_id) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd >= 0) {
    const std::string content = worker_id + "\n";
    const ssize_t n = ::write(fd, content.data(), content.size());
    ::close(fd);
    if (n != static_cast<ssize_t>(content.size())) {
      throw std::runtime_error("cannot write claim '" + path + "'");
    }
    return true;
  }
  if (errno != EEXIST) {
    throw std::runtime_error("cannot create claim '" + path +
                             "': " + std::strerror(errno));
  }
  std::ifstream in(path);
  std::string owner;
  std::getline(in, owner);
  return owner == worker_id;
}

/// Where one completed job's row lives on disk — the checkpoint index
/// keeps offsets, not row contents, so resume memory is O(jobs done)
/// small structs regardless of how big each row is.
/// The gate-count objective: priced exactly as the simulator builds
/// the mesh. Without `num_gss_routers` that is Table IV's noc_3x3
/// (3 design-kind routers + 6 conventional); with it, the Fig. 8
/// mixed mesh — n design-kind routers nearest memory, priority-first
/// elsewhere — so sweeps over the router count see the area cost of
/// each upgrade, not just its performance.
[[nodiscard]] double mesh_gates(const analysis::AreaModel& area,
                                const core::SystemConfig& cfg) {
  if (!cfg.num_gss_routers) return area.design_area(cfg.design).noc_3x3;
  const traffic::Application app =
      cfg.custom_app ? *cfg.custom_app : traffic::build_application(cfg.app);
  const std::uint64_t routers =
      static_cast<std::uint64_t>(app.noc.width) * app.noc.height;
  const std::uint64_t n =
      std::min<std::uint64_t>(*cfg.num_gss_routers, routers);
  const std::uint32_t flits = app.noc.buffer_flits;
  return static_cast<double>(n) *
             area.router_gates(core::router_kind(cfg.design), flits) +
         static_cast<double>(routers - n) *
             area.router_gates(noc::FlowControlKind::kPriorityFirst, flits) +
         area.memory_subsystem_gates(cfg.design);
}

struct RowRef {
  std::uint64_t job = 0;
  std::size_t file = 0;      ///< index into the scanned file list
  std::uint64_t offset = 0;  ///< byte offset of the line
  std::uint64_t length = 0;  ///< line length, excluding '\n'
};

struct RowIndex {
  std::vector<std::string> files;  ///< absolute row-file paths
  std::vector<RowRef> rows;        ///< deduplicated, unsorted
  std::unordered_set<std::uint64_t> done;
};

/// Parse one checkpoint line just far enough to recover its job index.
[[nodiscard]] std::optional<std::uint64_t> job_of_line(
    const std::string& line) {
  try {
    const JsonValue v = scenario::parse_json(line, "<row>");
    const JsonMember* m = v.find("job");
    if (m == nullptr || !m->value().is(JsonKind::kNumber)) {
      return std::nullopt;
    }
    return static_cast<std::uint64_t>(m->value().number);
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

/// Scan one shard's row file. Returns the byte length of the valid
/// prefix: everything after the last complete, parseable line is a
/// torn write from a killed process and is ignored (and truncated away
/// when the file is ours — we are about to append to it).
std::uint64_t scan_row_file(const std::string& path, std::size_t file_idx,
                            RowIndex& index) {
  std::ifstream in(path, std::ios::binary);
  std::string line;
  std::uint64_t offset = 0;
  std::uint64_t valid_end = 0;
  while (std::getline(in, line)) {
    if (in.eof()) break;  // no trailing '\n': torn final line
    const std::optional<std::uint64_t> job = job_of_line(line);
    if (!job) break;  // torn mid-line write that still got a '\n'
    if (index.done.insert(*job).second) {
      index.rows.push_back(RowRef{*job, file_idx, offset, line.size()});
    }
    offset += line.size() + 1;
    valid_end = offset;
  }
  return valid_end;
}

[[nodiscard]] RowIndex scan_rows(const std::string& rows_dir,
                                 const std::string& own_file) {
  RowIndex index;
  std::vector<std::string> names;
  if (DIR* d = ::opendir(rows_dir.c_str())) {
    while (const dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name.size() > 6 &&
          name.compare(name.size() - 6, 6, ".jsonl") == 0) {
        names.push_back(name);
      }
    }
    ::closedir(d);
  }
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const std::string path = rows_dir + "/" + name;
    const std::size_t file_idx = index.files.size();
    index.files.push_back(path);
    const std::uint64_t valid_end = scan_row_file(path, file_idx, index);
    if (name == own_file) {
      // Repair before appending: everything past the valid prefix is
      // a torn row from our previous life, and appending after it
      // would corrupt the line framing for every future scan.
      if (::truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0) {
        throw std::runtime_error("cannot truncate '" + path + "'");
      }
    }
  }
  return index;
}

/// Read one referenced line back (the merge never holds more than one
/// row in memory).
[[nodiscard]] std::string read_row(const std::string& path,
                                   const RowRef& ref) {
  std::ifstream in(path, std::ios::binary);
  in.seekg(static_cast<std::streamoff>(ref.offset));
  std::string line(ref.length, '\0');
  in.read(line.data(), static_cast<std::streamsize>(ref.length));
  if (!in) {
    throw std::runtime_error("cannot re-read row from '" + path + "'");
  }
  return line;
}

[[nodiscard]] double number_member(const JsonValue& row, const char* key) {
  const JsonMember* m = row.find(key);
  if (m == nullptr || !m->value().is(JsonKind::kNumber)) return 0.0;
  return m->value().number;
}

[[nodiscard]] std::string manifest_text(const SweepSpec& spec,
                                        std::uint64_t chunk) {
  std::string out = "{\"name\": " + scenario::json_quote(spec.name) +
                    ", \"application\": " +
                    scenario::json_quote(spec.application) +
                    ", \"total_jobs\": " + std::to_string(spec.job_count()) +
                    ", \"chunk\": " + std::to_string(chunk) + "}\n";
  return out;
}

/// First run pins the sweep shape; every later run (resume or shard)
/// must agree, or it is pointed at the wrong directory — job indices
/// would mean different configs and the merged output would be salad.
void pin_manifest(const SweepSpec& spec, const ExecutorOptions& opts) {
  const std::string path = opts.out_dir + "/manifest.json";
  const std::string want = manifest_text(spec, opts.chunk);
  if (publish_first(path, want, opts.worker_id)) return;
  const JsonValue have = scenario::parse_json(slurp(path), path);
  const auto total = static_cast<std::uint64_t>(number_member(have, "total_jobs"));
  const auto chunk = static_cast<std::uint64_t>(number_member(have, "chunk"));
  if (total != spec.job_count() || chunk != opts.chunk) {
    throw ParseError(path, 1, 1, "manifest",
                     "output directory belongs to a different sweep: it "
                     "pins " + std::to_string(total) + " jobs in chunks of " +
                     std::to_string(chunk) + ", this run expands to " +
                     std::to_string(spec.job_count()) + " in chunks of " +
                     std::to_string(opts.chunk));
  }
}

void write_final_outputs(const SweepSpec& spec, const ExecutorOptions& opts,
                         RowIndex& index) {
  std::sort(index.rows.begin(), index.rows.end(),
            [](const RowRef& a, const RowRef& b) { return a.job < b.job; });

  // merged.jsonl: every row, job order, one row in memory at a time.
  const std::string merged_tmp =
      opts.out_dir + "/merged.jsonl.tmp." + opts.worker_id;
  std::FILE* merged = std::fopen(merged_tmp.c_str(), "wb");
  if (merged == nullptr) {
    throw std::runtime_error("cannot write '" + merged_tmp + "'");
  }
  std::vector<ParetoPoint> points;
  points.reserve(index.rows.size());
  for (const RowRef& ref : index.rows) {
    const std::string line = read_row(index.files[ref.file], ref);
    std::fwrite(line.data(), 1, line.size(), merged);
    std::fputc('\n', merged);
    const JsonValue row = scenario::parse_json(line, "<row>");
    ParetoPoint p;
    p.job = ref.job;
    p.point = spec.job_point(ref.job);
    p.latency_all = number_member(row, "latency_all");
    p.utilization = number_member(row, "utilization");
    p.gates = number_member(row, "gates");
    points.push_back(std::move(p));
  }
  std::fclose(merged);
  const std::string merged_path = opts.out_dir + "/merged.jsonl";
  if (std::rename(merged_tmp.c_str(), merged_path.c_str()) != 0) {
    throw std::runtime_error("cannot rename '" + merged_tmp + "'");
  }

  const std::vector<ParetoPoint> frontier = pareto_frontier(points);
  std::string pj = "{\n  \"name\": " + scenario::json_quote(spec.name) +
                   ",\n  \"objectives\": {\"latency_all\": \"min\", "
                   "\"utilization\": \"max\", \"gates\": \"min\"},\n"
                   "  \"frontier\": [\n";
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const ParetoPoint& p = frontier[i];
    pj += "    {\"job\": " + std::to_string(p.job) +
          ", \"point\": " + p.point +
          ", \"latency_all\": " + scenario::json_number(p.latency_all) +
          ", \"utilization\": " + scenario::json_number(p.utilization) +
          ", \"gates\": " + scenario::json_number(p.gates) + "}";
    pj += i + 1 < frontier.size() ? ",\n" : "\n";
  }
  pj += "  ]\n}\n";
  replace_file(opts.out_dir + "/pareto.json", pj, opts.worker_id);

  const std::string summary =
      "{\"name\": " + scenario::json_quote(spec.name) +
      ", \"application\": " + scenario::json_quote(spec.application) +
      ", \"total_jobs\": " + std::to_string(spec.job_count()) +
      ", \"rows\": " + std::to_string(index.rows.size()) +
      ", \"pareto_points\": " + std::to_string(frontier.size()) + "}\n";
  replace_file(opts.out_dir + "/summary.json", summary, opts.worker_id);
}

}  // namespace

SweepOutcome run_sweep(const SweepSpec& spec, const ExecutorOptions& opts) {
  const std::uint64_t total = spec.job_count();
  const std::uint64_t chunk = std::max<std::uint64_t>(opts.chunk, 1);
  const std::uint64_t num_chunks = (total + chunk - 1) / chunk;

  mkdir_p(opts.out_dir);
  mkdir_p(opts.out_dir + "/claims");
  mkdir_p(opts.out_dir + "/rows");
  pin_manifest(spec, opts);

  const std::string own_file = opts.worker_id + ".jsonl";
  const std::string rows_dir = opts.out_dir + "/rows";
  RowIndex before = scan_rows(rows_dir, own_file);

  runner::StreamExporter rows_out(rows_dir + "/" + own_file,
                                  runner::StreamFormat::kJsonLines);
  if (!rows_out.ok()) {
    throw std::runtime_error("cannot append to row file in '" + rows_dir +
                             "'");
  }
  std::optional<runner::StreamExporter> csv_out;
  if (!opts.csv_path.empty()) {
    csv_out.emplace(opts.csv_path, runner::StreamFormat::kCsv, "job,gates");
  }

  // Job handout: lazily claim chunks, then feed their not-yet-done
  // jobs one at a time. Runs under the runner's source lock, so the
  // cursor state needs no synchronization of its own.
  std::uint64_t handed = 0;
  std::uint64_t next_chunk = 0;
  std::deque<std::uint64_t> pending;
  const runner::JobSource source =
      [&]() -> std::optional<runner::StreamJob> {
    if (opts.max_jobs != 0 && handed >= opts.max_jobs) return std::nullopt;
    while (pending.empty() && next_chunk < num_chunks) {
      const std::uint64_t c = next_chunk++;
      if (!claim_chunk(chunk_claim_path(opts.out_dir, c), opts.worker_id)) {
        continue;
      }
      const std::uint64_t lo = c * chunk;
      const std::uint64_t hi = std::min(total, lo + chunk);
      for (std::uint64_t j = lo; j < hi; ++j) {
        if (before.done.find(j) == before.done.end()) pending.push_back(j);
      }
    }
    if (pending.empty()) return std::nullopt;
    const std::uint64_t j = pending.front();
    pending.pop_front();
    ++handed;
    return runner::StreamJob{static_cast<std::size_t>(j),
                             spec.job_config(j)};
  };

  // Checkpoint sink: one row per finished job, flushed before the next
  // row of this worker can land. wall_seconds is zeroed in persisted
  // rows — it is the one nondeterministic field, and resume promises
  // bitwise-identical outputs.
  const analysis::AreaModel area;
  std::uint64_t completed_now = 0;
  const runner::StreamSink sink = [&](runner::RunResult&& r) {
    const auto j = static_cast<std::uint64_t>(r.index);
    const core::SystemConfig cfg = spec.job_config(j);
    runner::LabeledRun run;
    run.table = spec.name;
    run.application = spec.application;
    run.ddr = to_string(cfg.generation);
    run.clock_mhz = cfg.clock_mhz;
    run.design = to_string(cfg.design);
    run.metrics = std::move(r.metrics);
    run.wall_seconds = 0.0;
    const double gates = mesh_gates(area, cfg);
    rows_out.append(run, "\"job\": " + std::to_string(j) +
                             ", \"point\": " + spec.job_point(j) +
                             ", \"gates\": " + scenario::json_number(gates));
    if (csv_out) {
      csv_out->append(run, std::to_string(j) + "," +
                               scenario::json_number(gates));
    }
    ++completed_now;
    if (opts.on_progress) {
      opts.on_progress(SweepProgress{completed_now, total, j,
                                     r.wall_seconds});
    }
  };

  runner::ExperimentRunner pool(runner::RunnerOptions{opts.jobs, {}});
  pool.run_stream(source, sink);

  SweepOutcome outcome;
  outcome.total_jobs = total;
  outcome.completed_now = completed_now;
  // Rescan: our rows plus whatever concurrent shards finished. Only a
  // fully-covered sweep earns the merged outputs.
  RowIndex after = scan_rows(rows_dir, "");
  outcome.rows_present = after.done.size();
  if (outcome.rows_present == total) {
    write_final_outputs(spec, opts, after);
    outcome.finished = true;
  }
  return outcome;
}

}  // namespace annoc::explore
