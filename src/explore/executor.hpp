/// \file executor.hpp
/// Sharded, resumable sweep execution. A sweep's output directory is
/// the coordination medium — no daemon, no sockets:
///
///   out/
///     manifest.json        sweep fingerprint (job count, chunk size);
///                          first writer wins, later runs must match
///     claims/chunk_N.claim created O_CREAT|O_EXCL — whichever process
///                          creates it owns those jobs, forever
///     rows/<worker>.jsonl  one JSONL row per completed job, appended
///                          and flushed as each job finishes
///     merged.jsonl         all rows sorted by job index (on finish)
///     pareto.json          non-dominated points (on finish)
///     summary.json         headline counts (on finish)
///
/// Because job expansion is a pure function of (spec, index) and every
/// row records its job index, a killed sweep loses at most the rows
/// being written at the kill; rerunning with the same worker id adopts
/// its claims, re-runs exactly the missing jobs, and produces
/// bit-identical merged outputs. Two processes pointed at the same
/// directory (distinct worker ids) shard the grid between them — the
/// O_EXCL claim is the entire arbitration protocol, so shards may live
/// on different machines sharing a filesystem.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "explore/sweep_spec.hpp"

namespace annoc::explore {

/// Fired once per job this process completes.
struct SweepProgress {
  std::uint64_t completed_now = 0;  ///< jobs finished by this process
  std::uint64_t total_jobs = 0;
  std::uint64_t job = 0;            ///< index of the job just finished
  double wall_seconds = 0.0;
};

struct ExecutorOptions {
  std::string out_dir;
  /// Worker threads inside this process (0 = hardware concurrency).
  unsigned jobs = 0;
  /// Shard identity: names this process's row file and claim
  /// ownership. Resuming MUST reuse the id (claims are adopted, never
  /// stolen); concurrent shards MUST differ.
  std::string worker_id = "w0";
  /// Jobs per claim — the sharding granularity. Pinned by the first
  /// run's manifest; later runs must match.
  std::uint64_t chunk = 16;
  /// Stop handing out work after this many jobs (0 = no limit). In-
  /// flight jobs still finish and checkpoint — this is a clean pause,
  /// and the resume tests use it as a deterministic kill point.
  std::uint64_t max_jobs = 0;
  /// Also stream rows to this CSV file (resumable, same append/flush
  /// discipline as the JSONL checkpoint). Empty = off.
  std::string csv_path;
  std::function<void(const SweepProgress&)> on_progress;
};

struct SweepOutcome {
  std::uint64_t total_jobs = 0;
  std::uint64_t completed_now = 0;  ///< jobs run by this invocation
  std::uint64_t rows_present = 0;   ///< distinct jobs done, all shards
  /// True when every job is done and merged.jsonl / pareto.json /
  /// summary.json were (re)written this invocation.
  bool finished = false;
};

/// Run (or resume) a sweep. Throws annoc::ParseError when the output
/// directory belongs to a different sweep shape, and std::runtime_error
/// when the directory cannot be created or written.
SweepOutcome run_sweep(const SweepSpec& spec, const ExecutorOptions& opts);

}  // namespace annoc::explore
