# Sweep-engine smoke: run the small checked-in grid with a mid-sweep
# stop (--max-jobs), resume it, and demand the merged outputs be
# byte-identical to an uninterrupted 2-worker run. Driven by ctest as
# `annoc_sweep_smoke` (label sweep-smoke); the sweep CI workflow does
# the same dance with a real SIGKILL. Invoke:
#
#   cmake -DSWEEP_BIN=<annoc_sweep> -DSPEC=<spec.json> -DOUT_DIR=<dir> \
#         -P tools/sweep_smoke.cmake

foreach(var SWEEP_BIN SPEC OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "sweep_smoke.cmake: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${OUT_DIR}")

function(run_sweep)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "failed (exit ${rc}): ${ARGN}")
  endif()
endfunction()

# Interrupted leg: stop after 2 jobs, then resume to completion.
run_sweep("${SWEEP_BIN}" "--out=${OUT_DIR}/resumed" --max-jobs=2 "${SPEC}")
run_sweep("${SWEEP_BIN}" "--out=${OUT_DIR}/resumed" "${SPEC}")

# Reference leg: uninterrupted, 2 workers.
run_sweep("${SWEEP_BIN}" "--out=${OUT_DIR}/ref" -j2 "${SPEC}")

foreach(artifact merged.jsonl pareto.json summary.json)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${OUT_DIR}/resumed/${artifact}" "${OUT_DIR}/ref/${artifact}"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
      "${artifact}: resumed sweep differs from uninterrupted run")
  endif()
endforeach()
message(STATUS "sweep smoke OK: resume is byte-identical")
