#!/usr/bin/env python3
"""Check that every relative link in the repository's markdown files
resolves to an existing file and, for in-repo anchors, an existing
heading. External http(s)/mailto links are not fetched. Stdlib only.

Fenced code blocks and inline code spans are stripped before both link
extraction and heading collection (a `# comment` inside a shell snippet
is not a heading, and `[i](x)` in code is not a link). Duplicate
headings get GitHub's -1/-2 suffixes, so anchors to the second "Usage"
section resolve. Any broken link or missing anchor fails the run.

    python3 tools/check_markdown_links.py          # check all *.md
"""

import pathlib
import re
import sys
import urllib.parse

ROOT = pathlib.Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#+\s+(.*)$", re.MULTILINE)
SKIP_DIRS = {".git", "build", "node_modules"}


def strip_fences(text: str) -> str:
    """Drop fenced code blocks (shell snippets contain `# headings`)."""
    out = []
    fence = None
    for line in text.splitlines():
        stripped = line.lstrip()
        if fence is None and stripped[:3] in ("```", "~~~"):
            fence = stripped[:3]
            continue
        if fence is not None:
            if stripped.startswith(fence):
                fence = None
            continue
        out.append(line)
    return "\n".join(out)


def strip_code(text: str) -> str:
    """Drop fences AND inline code spans — for link extraction only.
    Headings keep their span text: GitHub's anchor for "The `x` CLI"
    contains the x."""
    return re.sub(r"`[^`\n]*`", "", strip_fences(text))


def anchor_of(heading: str) -> str:
    """GitHub-style anchor slug for a heading.

    Backticks and asterisks are markup and vanish; underscores are
    literal text and survive (GitHub's anchor for a heading containing
    `fault_degradation` keeps the underscore).
    """
    slug = heading.strip().lower()
    slug = re.sub(r"[`*]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(text: str) -> set:
    """All anchors a rendered page exposes, duplicate-heading suffixes
    included (the second "## Usage" is #usage-1)."""
    counts = {}
    anchors = set()
    for heading in HEADING_RE.findall(strip_fences(text)):
        slug = anchor_of(heading)
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def markdown_files():
    for path in sorted(ROOT.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def check_file(path: pathlib.Path, errors: list, anchor_cache: dict) -> None:
    text = path.read_text(encoding="utf-8")
    rel = path.relative_to(ROOT)
    for target in LINK_RE.findall(strip_code(text)):
        target = urllib.parse.unquote(target)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        dest = path if not base else (path.parent / base).resolve()
        if base and not dest.exists():
            errors.append(f"{rel}: broken link -> {target}")
            continue
        if fragment and dest.suffix == ".md" and dest.is_file():
            if dest not in anchor_cache:
                anchor_cache[dest] = anchors_of(
                    dest.read_text(encoding="utf-8"))
            if fragment.lower() not in anchor_cache[dest]:
                errors.append(f"{rel}: missing anchor -> {target}")


def main() -> int:
    errors: list = []
    anchor_cache: dict = {}
    count = 0
    for path in markdown_files():
        count += 1
        check_file(path, errors, anchor_cache)
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {count} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
