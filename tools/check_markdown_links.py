#!/usr/bin/env python3
"""Check that every relative link in the repository's markdown files
resolves to an existing file (and, for in-repo anchors, an existing
heading). External http(s)/mailto links are not fetched. Stdlib only.

    python3 tools/check_markdown_links.py          # check tracked *.md
"""

import pathlib
import re
import sys
import urllib.parse

ROOT = pathlib.Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#+\s+(.*)$", re.MULTILINE)
SKIP_DIRS = {".git", "build", "node_modules"}


def anchor_of(heading: str) -> str:
    """GitHub-style anchor slug for a heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def markdown_files():
    for path in sorted(ROOT.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def check_file(path: pathlib.Path, errors: list) -> None:
    text = path.read_text(encoding="utf-8")
    for target in LINK_RE.findall(text):
        target = urllib.parse.unquote(target)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        dest = path if not base else (path.parent / base).resolve()
        rel = path.relative_to(ROOT)
        if base:
            if not dest.exists():
                errors.append(f"{rel}: broken link -> {target}")
                continue
        if fragment and dest.suffix == ".md" and dest.exists():
            anchors = {anchor_of(h) for h in HEADING_RE.findall(
                dest.read_text(encoding="utf-8"))}
            if fragment.lower() not in anchors:
                errors.append(f"{rel}: missing anchor -> {target}")


def main() -> int:
    errors: list = []
    count = 0
    for path in markdown_files():
        count += 1
        check_file(path, errors)
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {count} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
