#!/usr/bin/env python3
"""Generate docs/CONFIG_REFERENCE.md from src/core/system_config.hpp
and src/scenario/schema.hpp.

Parses the SystemConfig struct: each member's type, default value and
doc comment, plus (by grepping tests/ and bench/) which tests pin each
knob — so the table doubles as a coverage map. Also parses the KeyInfo
tables in scenario/schema.hpp and explore/sweep_schema.hpp into the
"Scenario file schema" and "Sweep spec schema" sections, so neither
JSON surface documented here can drift from what the loaders accept.
Stdlib only; run from the repository root:

    python3 tools/gen_config_reference.py          # rewrite the doc
    python3 tools/gen_config_reference.py --check  # CI: fail if stale
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
HEADER = ROOT / "src" / "core" / "system_config.hpp"
SCHEMA = ROOT / "src" / "scenario" / "schema.hpp"
SWEEP_SCHEMA = ROOT / "src" / "explore" / "sweep_schema.hpp"
OUTPUT = ROOT / "docs" / "CONFIG_REFERENCE.md"

# KeyInfo arrays in schema.hpp, in render order: (array name, heading,
# lead-in sentence).
SCHEMA_TABLES = [
    (
        "kScenarioKeys",
        "Top-level keys",
        "Every key accepted at the top level of a scenario file. `app`"
        " and `cores`/`mesh` are mutually exclusive ways to pick the"
        " workload; the rest map one-to-one onto `SystemConfig` knobs"
        " above.",
    ),
    (
        "kMeshKeys",
        "`mesh` object",
        "Geometry of a custom core set's mesh (required whenever"
        " `cores` is present).",
    ),
    (
        "kCoreKeys",
        "`cores[]` entries",
        "One object per core. `node` and `region_base` are each"
        " all-or-none across the array: give them on every core or on"
        " none (auto-placement needs exactly width×height cores).",
    ),
    (
        "kFaultKeys",
        "`faults[]` entries",
        "One object per injected fault. `kind` selects which of the"
        " kind-specific parameters apply; the rest are ignored. Random"
        " schedules use the top-level `fault.*` knobs instead. Authoring"
        " guide with worked examples:"
        " [docs/RESILIENCE.md](RESILIENCE.md).",
    ),
    (
        "kTopologyKeys",
        "`topology` object",
        "An irregular fabric: named nodes wired by explicit links,"
        " replacing the parametric mesh. Inline object or a file path"
        " string (resolved against the scenario's directory). Requires"
        " `cores` with a `node` on every core; mutually exclusive with"
        " `mesh`, `mesh_preset` and `adaptive_routing`. Authoring guide:"
        " [docs/TOPOLOGIES.md](TOPOLOGIES.md).",
    ),
    (
        "kMemoryKeys",
        "`memory` object",
        "Placement and per-controller configuration of the"
        " `num_controllers` memory controllers. Omitted, controllers"
        " land on default nodes (mesh: spread around the perimeter ring;"
        " topology: spread across node ids).",
    ),
    (
        "kControllerKeys",
        "`memory.controllers[]` entries",
        "One override object per controller, index == channel; fewer"
        " entries than controllers leaves the tail on the top-level"
        " knobs. `null` (or an absent key) falls back to the matching"
        " top-level engine knob.",
    ),
]

# KeyInfo arrays in explore/sweep_schema.hpp, same shape and contract.
SWEEP_TABLES = [
    (
        "kSweepKeys",
        "Top-level sweep keys",
        "Every key accepted at the top level of a sweep-spec file"
        " (`scenarios/sweeps/*.json`, run by `annoc_sweep`).",
    ),
    (
        "kAxisKeys",
        "`axes[]` entries",
        "One object per swept scenario key. Exactly one of `values` and"
        " `range` supplies the candidate list.",
    ),
    (
        "kRangeKeys",
        "`range` object",
        "Evenly spaced numeric candidates, both endpoints included.",
    ),
]

# One C string literal, escapes included.
STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


def parse_schema_array(text: str, array: str, origin: str = "schema.hpp"):
    """Rows of one `inline constexpr KeyInfo <array>[] = {...}` table.

    Each entry is `{"key", "type", "default", "doc"},` (schema.hpp and
    sweep_schema.hpp keep that shape by contract); we pull the string
    literals and group them in fours.
    """
    m = re.search(re.escape(array) + r"\[\]\s*=\s*\{", text)
    if not m:
        raise SystemExit(f"{array} not found in {origin}")
    body = text[m.end() : text.index("};", m.end())]
    lits = [s.replace('\\"', '"') for s in STRING_RE.findall(body)]
    if not lits or len(lits) % 4:
        raise SystemExit(
            f"{array}: expected groups of four string literals, got"
            f" {len(lits)} — keep the {{key, type, default, doc}} shape"
        )
    return [
        {"key": lits[i], "type": lits[i + 1], "default": lits[i + 2],
         "doc": lits[i + 3]}
        for i in range(0, len(lits), 4)
    ]


def extract_struct(text: str) -> str:
    start = text.index("struct SystemConfig {")
    depth = 0
    for i in range(start, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[start : i + 1]
    raise SystemExit("unbalanced braces in SystemConfig")


MEMBER_RE = re.compile(
    r"^(?P<type>[A-Za-z_][\w:<>,\s]*?)\s+(?P<name>[a-z]\w*)"
    r"(?:\s*=\s*(?P<default>[^;]+))?;\s*(?:///<.*)?$"
)


def parse_members(struct_text: str):
    members = []
    doc: list[str] = []
    for raw in struct_text.splitlines()[1:-1]:
        line = raw.strip()
        if line.startswith("///"):
            doc.append(line.lstrip("/").strip())
            continue
        if not line or line.startswith("//"):
            continue
        if "(" in line and "=" not in line.split("(")[0]:
            doc = []  # method or constructor — not a knob
            continue
        m = MEMBER_RE.match(line)
        if m:
            members.append(
                {
                    "name": m.group("name"),
                    "type": " ".join(m.group("type").split()),
                    "default": (m.group("default") or "").strip(),
                    "doc": " ".join(doc),
                }
            )
        doc = []
    return members


def pinning_tests(name: str):
    """Test/bench files that assign this knob (cfg.<name> = / .name =)."""
    pattern = re.compile(r"\.\s*" + re.escape(name) + r"\s*=")
    hits = []
    for sub in ("tests", "bench"):
        for path in sorted((ROOT / sub).glob("*.cpp")):
            if pattern.search(path.read_text(encoding="utf-8")):
                hits.append(f"{sub}/{path.name}")
    return hits


def esc(s: str) -> str:
    return s.replace("|", "\\|").replace("<", "&lt;").replace(">", "&gt;")


def render_schema_section(schema_text: str) -> list[str]:
    lines = [
        "",
        "# Scenario file schema",
        "",
        "Keys of the declarative scenario files under"
        " [`scenarios/`](../scenarios), parsed from the `KeyInfo` tables"
        " in [`src/scenario/schema.hpp`](../src/scenario/schema.hpp)"
        " (the same tables the loader validates against, so this section"
        " cannot drift from the code). Narrative guide with worked"
        " examples: [docs/WORKLOADS.md](WORKLOADS.md).",
    ]
    lines += render_key_tables(schema_text, SCHEMA_TABLES, "schema.hpp")
    return lines


def render_key_tables(text: str, tables, origin: str) -> list[str]:
    lines: list[str] = []
    for array, heading, blurb in tables:
        rows = parse_schema_array(text, array, origin)
        lines += [
            "",
            f"## {heading}",
            "",
            blurb,
            "",
            "| key | type | default | description |",
            "|---|---|---|---|",
        ]
        for r in rows:
            default = r["default"]
            lines.append(
                "| `{}` | `{}` | {} | {} |".format(
                    r["key"],
                    esc(r["type"]),
                    f"`{esc(default)}`" if default != "-" else "required",
                    esc(r["doc"]),
                )
            )
    return lines


def render_sweep_section(sweep_text: str) -> list[str]:
    lines = [
        "",
        "# Sweep spec schema",
        "",
        "Keys of the design-space sweep files under"
        " [`scenarios/sweeps/`](../scenarios/sweeps), parsed from the"
        " `KeyInfo` tables in"
        " [`src/explore/sweep_schema.hpp`](../src/explore/sweep_schema.hpp)"
        " (the same tables `annoc_sweep` validates against). Any"
        " sweepable scenario key can be an axis; a grid takes the cross"
        " product, `\"mode\": \"random\"` draws `samples` seeded points."
        " Walkthrough: [EXPERIMENTS.md](../EXPERIMENTS.md).",
    ]
    lines += render_key_tables(sweep_text, SWEEP_TABLES, "sweep_schema.hpp")
    return lines


def render(members, schema_text: str, sweep_text: str) -> str:
    lines = [
        "# SystemConfig reference",
        "",
        "<!-- Generated by tools/gen_config_reference.py — do not edit"
        " by hand. -->",
        "",
        "Every knob of [`core::SystemConfig`](../src/core/system_config.hpp),"
        " the single struct that describes one simulation run. The last"
        " column lists the test and bench files that assign the knob —"
        " a coverage map of where each one is exercised.",
        "",
        "| knob | type | default | description | pinned by |",
        "|---|---|---|---|---|",
    ]
    for m in members:
        pins = pinning_tests(m["name"])
        shown = ", ".join(f"`{p}`" for p in pins[:4])
        if len(pins) > 4:
            shown += f" +{len(pins) - 4} more"
        lines.append(
            "| `{}` | `{}` | `{}` | {} | {} |".format(
                m["name"],
                esc(m["type"]),
                esc(m["default"]) if m["default"] else "—",
                esc(m["doc"]) or "—",
                shown or "—",
            )
        )
    lines += render_schema_section(schema_text)
    lines += render_sweep_section(sweep_text)
    lines += [
        "",
        "Regenerate with `python3 tools/gen_config_reference.py` after"
        " changing `system_config.hpp`, `scenario/schema.hpp` or"
        " `explore/sweep_schema.hpp`; CI fails if this file is stale.",
        "",
    ]
    return "\n".join(lines)


def main() -> int:
    members = parse_members(extract_struct(HEADER.read_text(encoding="utf-8")))
    if not members:
        print("no members parsed — parser bug?", file=sys.stderr)
        return 1
    doc = render(members, SCHEMA.read_text(encoding="utf-8"),
                 SWEEP_SCHEMA.read_text(encoding="utf-8"))
    if "--check" in sys.argv:
        current = OUTPUT.read_text(encoding="utf-8") if OUTPUT.exists() else ""
        if current != doc:
            print(
                f"{OUTPUT.relative_to(ROOT)} is stale: rerun "
                "python3 tools/gen_config_reference.py",
                file=sys.stderr,
            )
            return 1
        print(f"{OUTPUT.relative_to(ROOT)} is up to date "
              f"({len(members)} knobs)")
        return 0
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(doc, encoding="utf-8")
    print(f"wrote {OUTPUT.relative_to(ROOT)} ({len(members)} knobs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
