/// \file export_csv.cpp
/// Machine-readable export: re-runs the Table I and Table II grids and
/// prints one row per (table, operating point, design) to stdout,
/// ready for pandas/gnuplot. `--format=json` switches to a JSON array;
/// the default is CSV. The human-readable benches print the same
/// numbers formatted like the paper; this binary exists so downstream
/// analysis never has to scrape those tables.
#include <array>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "runner/metrics_export.hpp"

using namespace annoc;
using core::DesignPoint;

int main(int argc, char** argv) {
  const unsigned jobs = bench::parse_jobs(argc, argv);
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--format=json") == 0) json = true;
    else if (std::strcmp(argv[i], "--format=csv") == 0) json = false;
    else if (std::strncmp(argv[i], "--format", 8) == 0) {
      std::fprintf(stderr, "%s: --format expects 'csv' or 'json', got '%s'\n",
                   argv[0], argv[i]);
      return 2;
    }
  }

  const auto rows = bench::table_rows();
  constexpr std::array<DesignPoint, 4> kT1 = {
      DesignPoint::kConv, DesignPoint::kRef4, DesignPoint::kGss,
      DesignPoint::kGssSagm};
  constexpr std::array<DesignPoint, 4> kT2 = {
      DesignPoint::kConvPfs, DesignPoint::kRef4Pfs, DesignPoint::kGss,
      DesignPoint::kGssSagm};

  std::vector<core::SystemConfig> cfgs;
  for (const auto& row : rows) {
    for (const DesignPoint d : kT1) {
      cfgs.push_back(bench::make_config(row, d, /*priority=*/false));
    }
    for (const DesignPoint d : kT2) {
      cfgs.push_back(bench::make_config(row, d, /*priority=*/true));
    }
  }
  const auto results = bench::make_runner(jobs).run(cfgs);

  std::vector<runner::LabeledRun> out;
  out.reserve(results.size());
  std::size_t idx = 0;
  const auto label = [&](const char* table, const bench::Row& row,
                         DesignPoint d) {
    runner::LabeledRun r;
    r.table = table;
    r.application = to_string(row.app);
    r.ddr = to_string(row.gen);
    r.clock_mhz = row.mhz;
    r.design = to_string(d);
    r.metrics = results[idx].metrics;
    r.wall_seconds = results[idx].wall_seconds;
    ++idx;
    out.push_back(std::move(r));
  };
  for (const auto& row : rows) {
    for (const DesignPoint d : kT1) label("table1", row, d);
    for (const DesignPoint d : kT2) label("table2", row, d);
  }

  if (json) {
    runner::write_json(stdout, out);
  } else {
    runner::write_csv(stdout, out);
  }
  return 0;
}
