/// \file export_csv.cpp
/// Machine-readable export: re-runs the Table I and Table II grids and
/// prints one CSV row per (table, operating point, design) to stdout,
/// ready for pandas/gnuplot. The human-readable benches print the same
/// numbers formatted like the paper; this binary exists so downstream
/// analysis never has to scrape those tables.
#include <array>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace annoc;
using core::DesignPoint;

namespace {

void emit(const char* table, const bench::Row& row, DesignPoint d,
          const core::Metrics& m) {
  std::printf(
      "%s,%s,%s,%.0f,%s,%.4f,%.4f,%.2f,%.2f,%.2f,%llu,%llu,%llu,%llu,%llu\n",
      table, to_string(row.app), to_string(row.gen), row.mhz, to_string(d),
      m.utilization, m.raw_utilization, m.avg_latency_all(),
      m.avg_latency_demand(), m.avg_latency_priority(),
      static_cast<unsigned long long>(m.completed_requests),
      static_cast<unsigned long long>(m.device.activates),
      static_cast<unsigned long long>(m.device.precharges),
      static_cast<unsigned long long>(m.device.auto_precharges),
      static_cast<unsigned long long>(m.device.wasted_beats()));
}

}  // namespace

int main() {
  std::printf(
      "table,application,ddr,clock_mhz,design,utilization,raw_utilization,"
      "latency_all,latency_demand,latency_priority,requests,activates,"
      "precharges,auto_precharges,wasted_beats\n");

  const auto rows = bench::table_rows();
  constexpr std::array<DesignPoint, 4> kT1 = {
      DesignPoint::kConv, DesignPoint::kRef4, DesignPoint::kGss,
      DesignPoint::kGssSagm};
  constexpr std::array<DesignPoint, 4> kT2 = {
      DesignPoint::kConvPfs, DesignPoint::kRef4Pfs, DesignPoint::kGss,
      DesignPoint::kGssSagm};

  std::vector<core::SystemConfig> cfgs;
  for (const auto& row : rows) {
    for (const DesignPoint d : kT1) {
      cfgs.push_back(bench::make_config(row, d, /*priority=*/false));
    }
    for (const DesignPoint d : kT2) {
      cfgs.push_back(bench::make_config(row, d, /*priority=*/true));
    }
  }
  const auto metrics = bench::run_batch(cfgs);

  std::size_t idx = 0;
  for (const auto& row : rows) {
    for (const DesignPoint d : kT1) emit("table1", row, d, metrics[idx++]);
    for (const DesignPoint d : kT2) emit("table2", row, d, metrics[idx++]);
  }
  return 0;
}
