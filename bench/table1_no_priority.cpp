/// \file table1_no_priority.cpp
/// Reproduces **Table I**: comparison on the industrial benchmarks
/// without priority memory requests. Four design points (CONV, [4],
/// GSS, GSS+SAGM) x nine application/clock rows; reports memory
/// utilization, memory latency of all packets, and memory latency of
/// demand packets (demand requests exist but are NOT priority-tagged
/// here), plus the paper's reference numbers for shape comparison.
#include <array>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace annoc;
using core::DesignPoint;

namespace {

constexpr std::array<DesignPoint, 4> kDesigns = {
    DesignPoint::kConv, DesignPoint::kRef4, DesignPoint::kGss,
    DesignPoint::kGssSagm};

// Paper Table I reference values, row-major [row][design].
constexpr double kPaperUtil[9][4] = {
    {0.755, 0.763, 0.771, 0.774}, {0.651, 0.691, 0.717, 0.761},
    {0.505, 0.592, 0.600, 0.619}, {0.717, 0.737, 0.766, 0.776},
    {0.625, 0.673, 0.715, 0.756}, {0.463, 0.554, 0.577, 0.596},
    {0.696, 0.707, 0.708, 0.712}, {0.555, 0.627, 0.627, 0.682},
    {0.426, 0.559, 0.531, 0.547}};
constexpr double kPaperLatAll[9][4] = {
    {121, 81, 74, 69},   {157, 109, 101, 86},  {216, 134, 140, 131},
    {144, 101, 86, 71},  {173, 120, 108, 91},  {244, 154, 143, 140},
    {154, 104, 89, 80},  {246, 149, 141, 115}, {364, 191, 195, 184}};
constexpr double kPaperLatDemand[9][4] = {
    {111, 63, 65, 60},   {153, 91, 89, 74},    {216, 113, 124, 113},
    {140, 80, 74, 61},   {171, 96, 94, 77},    {248, 126, 127, 119},
    {128, 73, 67, 57},   {196, 107, 104, 85},  {266, 133, 144, 128}};

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = bench::parse_jobs(argc, argv);
  const auto rows = bench::table_rows();
  std::vector<core::SystemConfig> cfgs;
  for (const auto& row : rows) {
    for (const DesignPoint d : kDesigns) {
      cfgs.push_back(bench::make_config(row, d, /*priority=*/false));
    }
  }
  std::printf("Table I — no priority memory request (%llu measured cycles"
              " per point; paper ran 1M)\n\n",
              static_cast<unsigned long long>(bench::sim_cycles()));
  const auto metrics = bench::run_batch(cfgs, jobs);

  const auto cell = [&](std::size_t row, std::size_t d) -> const core::Metrics& {
    return metrics[row * kDesigns.size() + d];
  };

  struct Column {
    const char* title;
    double (*get)(const core::Metrics&);
    const double (*paper)[4];
    const char* fmt;
  };
  const Column columns[3] = {
      {"Memory utilization",
       [](const core::Metrics& m) { return m.utilization; }, kPaperUtil,
       "%6.3f"},
      {"Memory latency, all packets (cycles)",
       [](const core::Metrics& m) { return m.avg_latency_all(); },
       kPaperLatAll, "%6.1f"},
      {"Memory latency, demand packets (cycles)",
       [](const core::Metrics& m) { return m.avg_latency_demand(); },
       kPaperLatDemand, "%6.1f"},
  };

  for (const Column& col : columns) {
    std::printf("== %s ==\n", col.title);
    std::printf("%-26s |", "application / clock");
    for (const DesignPoint d : kDesigns) std::printf(" %12s", to_string(d));
    std::printf(" | paper: CONV [4] GSS +SAGM\n");
    bench::print_rule(110);

    std::vector<double> avg(kDesigns.size(), 0.0);
    std::vector<double> paper_avg(kDesigns.size(), 0.0);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      std::printf("%-26s |", bench::row_label(rows[r]));
      for (std::size_t d = 0; d < kDesigns.size(); ++d) {
        const double v = col.get(cell(r, d));
        avg[d] += v / static_cast<double>(rows.size());
        paper_avg[d] += col.paper[r][d] / static_cast<double>(rows.size());
        std::printf("       ");
        std::printf(col.fmt, v);
      }
      std::printf(" |");
      for (std::size_t d = 0; d < kDesigns.size(); ++d) {
        std::printf(" %s", col.paper == kPaperUtil ? "" : "");
        std::printf(col.paper == kPaperUtil ? "%5.3f" : "%5.0f",
                    col.paper[r][d]);
      }
      std::printf("\n");
    }
    bench::print_rule(110);
    std::printf("%-26s |", "average");
    for (const double v : avg) {
      std::printf("       ");
      std::printf(col.fmt, v);
    }
    std::printf(" |");
    for (const double v : paper_avg) {
      std::printf(col.paper == kPaperUtil ? "%5.3f" : "%5.0f", v);
      std::printf(" ");
    }
    std::printf("\n%-26s |", "ratio vs [4]");
    for (const double v : avg) std::printf("       %6.3f", v / avg[1]);
    std::printf(" |");
    for (const double v : paper_avg) std::printf("%5.3f ", v / paper_avg[1]);
    std::printf("\n\n");
  }

  std::printf(
      "Shape checks (paper): GSS >= [4] on utilization; GSS+SAGM best on\n"
      "every column; CONV worst; SAGM gain largest on DDR II, smallest on\n"
      "DDR III (tCCD=4); utilization falls with DDR generation/clock.\n");
  return 0;
}
