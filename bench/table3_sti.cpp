/// \file table3_sti.cpp
/// Reproduces **Table III**: GSS+SAGM+STI (Fig. 4b flow control with
/// short-turnaround bank-interleaving awareness) against GSS+SAGM on
/// high-clock DDR III, where deactivation/reactivation delays are many
/// cycles and scheduling into a still-turning-around bank stalls the
/// device.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace annoc;
using core::DesignPoint;

int main(int argc, char** argv) {
  const unsigned jobs = bench::parse_jobs(argc, argv);
  struct Point {
    traffic::AppId app;
    double mhz;
    double paper_util, paper_util_gain;
    double paper_lat, paper_lat_gain;
    double paper_prio, paper_prio_gain;
  };
  const std::vector<Point> points = {
      {traffic::AppId::kBluray, 533.0, 0.674, 10.9, 119, 4.0, 79, 12.2},
      {traffic::AppId::kSingleDtv, 667.0, 0.590, 5.5, 140, 7.3, 87, 8.4},
      {traffic::AppId::kDualDtv, 800.0, 0.593, 11.9, 161, 22.2, 81, 18.2},
  };

  std::vector<core::SystemConfig> cfgs;
  for (const Point& p : points) {
    bench::Row row{p.app, sdram::DdrGeneration::kDdr3, p.mhz};
    cfgs.push_back(
        bench::make_config(row, DesignPoint::kGssSagm, /*priority=*/true));
    cfgs.push_back(
        bench::make_config(row, DesignPoint::kGssSagmSti, /*priority=*/true));
  }
  std::printf("Table III — GSS+SAGM+STI vs GSS+SAGM on DDR III (%llu "
              "measured cycles per point)\n\n",
              static_cast<unsigned long long>(bench::sim_cycles()));
  const auto metrics = bench::run_batch(cfgs, jobs);

  std::printf("%-22s | %21s | %25s | %25s\n", "application / clock",
              "utilization (gain%)", "latency all (gain%)",
              "latency priority (gain%)");
  bench::print_rule(104);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const core::Metrics& base = metrics[2 * i];
    const core::Metrics& sti = metrics[2 * i + 1];
    const auto gain = [](double b, double s, bool higher_better) {
      if (b <= 0) return 0.0;
      return higher_better ? (s - b) / b * 100.0 : (b - s) / b * 100.0;
    };
    char label[64];
    std::snprintf(label, sizeof label, "%s @ %.0f MHz",
                  to_string(points[i].app), points[i].mhz);
    std::printf("%-22s | %6.3f (%+5.1f%%)      | %8.1f cy (%+5.1f%%)    "
                "| %8.1f cy (%+5.1f%%)\n",
                label, sti.utilization,
                gain(base.utilization, sti.utilization, true),
                sti.avg_latency_all(),
                gain(base.avg_latency_all(), sti.avg_latency_all(), false),
                sti.avg_latency_priority(),
                gain(base.avg_latency_priority(), sti.avg_latency_priority(),
                     false));
    std::printf("%-22s | paper: %.3f (+%.1f%%) | paper: %4.0f cy (+%.1f%%)"
                "    | paper: %4.0f cy (+%.1f%%)\n",
                "", points[i].paper_util, points[i].paper_util_gain,
                points[i].paper_lat, points[i].paper_lat_gain,
                points[i].paper_prio, points[i].paper_prio_gain);
  }
  std::printf(
      "\nShape check (paper): STI helps most at the highest clock (dual\n"
      "DTV @ 800 MHz), because tWR+tRP spans ~23 cycles there; the paper\n"
      "reports +9.4%% utilization / +11.2%% latency / +12.9%% priority\n"
      "latency on average. This reproduction's router-level STI gains are\n"
      "smaller because its memory engine already tracks bank readiness\n"
      "(see EXPERIMENTS.md).\n");
  return 0;
}
