/// \file table4_gate_count.cpp
/// Reproduces **Table IV**: gate counts at a 400 MHz synthesis corner
/// for CONV, [4] and GSS+SAGM+STI — flow controller, router, memory
/// subsystem, and a full 3x3 NoC with its memory subsystem.
///
/// The paper synthesizes Verilog with Synopsys Design Vision on the OSU
/// 45 nm PDK; this reproduction composes each design from a component-
/// level gate budget (see analysis/area_model.hpp). The paper's numbers
/// are printed alongside for comparison.
#include <array>
#include <cstdio>

#include "analysis/area_model.hpp"

using namespace annoc;
using core::DesignPoint;

int main() {
  // No simulation here (pure area model), so no --jobs knob.
  const analysis::AreaModel model;
  constexpr std::array<DesignPoint, 3> kDesigns = {
      DesignPoint::kConv, DesignPoint::kRef4, DesignPoint::kGssSagmSti};
  constexpr const char* kNames[3] = {"CONV", "[4]", "GSS+SAGM+STI"};
  // Paper Table IV: gate counts per module per design.
  constexpr double kPaper[4][3] = {
      {3310, 6732, 6136},        // flow controller
      {56683, 62949, 62721},     // router
      {489898, 158874, 149245},  // memory subsystem
      {966250, 661645, 639481},  // 3x3 NoC with memory subsystem
  };
  constexpr const char* kModules[4] = {"Flow controller", "Router",
                                       "Memory subsystem",
                                       "3x3 NoC + memory subsystem"};

  std::array<analysis::DesignArea, 3> areas{};
  for (std::size_t i = 0; i < kDesigns.size(); ++i) {
    areas[i] = model.design_area(kDesigns[i]);
  }
  const auto value = [&](std::size_t module, std::size_t design) {
    switch (module) {
      case 0: return areas[design].flow_controller;
      case 1: return areas[design].router;
      case 2: return areas[design].memory_subsystem;
      default: return areas[design].noc_3x3;
    }
  };

  std::printf("Table IV — gate count at 400 MHz (component-model "
              "substitution for Design Vision / OSU 45nm)\n\n");
  std::printf("%-28s |", "module");
  for (const char* n : kNames) std::printf(" %12s  ratio |", n);
  std::printf("\n");
  for (int i = 0; i < 100; ++i) std::fputc('-', stdout);
  std::printf("\n");
  for (std::size_t mdl = 0; mdl < 4; ++mdl) {
    std::printf("%-28s |", kModules[mdl]);
    const double ours = value(mdl, 2);
    for (std::size_t d = 0; d < kDesigns.size(); ++d) {
      std::printf(" %12.0f  %5.3f |", value(mdl, d), value(mdl, d) / ours);
    }
    std::printf("\n%-28s |", "  (paper)");
    for (std::size_t d = 0; d < kDesigns.size(); ++d) {
      std::printf(" %12.0f  %5.3f |", kPaper[mdl][d],
                  kPaper[mdl][d] / kPaper[mdl][2]);
    }
    std::printf("\n");
  }

  std::printf(
      "\nShape checks (paper): the GSS flow controller is ~85%% bigger\n"
      "than the conventional one but ~9%% smaller than [4]'s; routers are\n"
      "within ~10%% of each other; CONV's memory subsystem is ~3.3x ours\n"
      "(reorder buffers + thread scheduler), making the whole CONV NoC\n"
      "~1.5x; [4] is ~1.04x.\n");
  return 0;
}
