/// \file sim_throughput.cpp
/// End-to-end simulator throughput (simulated cycles per wall second)
/// per design point, across the three scheduler modes (dense stepping,
/// idle-cycle fast-forward, event-driven). This is the guard bench for
/// the scheduler work: on idle-heavy traffic the skip paths must win
/// big; on saturated traffic fast-forward must cost (almost) nothing —
/// its horizon scans are pure overhead there — while the event core
/// must still win by ticking only the components that have work.
///
/// Default mode is a google-benchmark driver (cycles/sec appears as
/// items_per_second). `--json [path]` instead times each point once and
/// writes a machine-readable summary (default BENCH_throughput.json) —
/// the checked-in copy records the speedups on the reference machine.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "scenario/scenario.hpp"

using namespace annoc;

namespace {

/// A near-idle SoC: one trickle core on a 2x2 mesh. Roughly one request
/// every ~3200 cycles, so almost the entire timeline is skippable.
traffic::Application idle_app() {
  traffic::Application app;
  app.name = "idle-trickle";
  app.noc.width = 2;
  app.noc.height = 2;
  app.noc.mem_node = 0;
  traffic::CoreSpec spec;
  spec.name = "trickle";
  spec.bytes_per_cycle = 0.01;
  spec.sizes = {{32, 1.0}};
  spec.region_bytes = 1 << 20;
  app.cores.push_back({spec, static_cast<NodeId>(3)});
  return app;
}

struct Point {
  std::string name;
  core::SystemConfig cfg;
  /// When set, the config is re-loaded from this scenario file for
  /// every timed run, so the point's throughput includes the scenario
  /// loader — the annoc_run smoke point uses it to keep loader
  /// regressions visible in BENCH_throughput.json.
  std::string scenario{};
};

std::vector<Point> points() {
  std::vector<Point> pts;
  const auto base = [] {
    core::SystemConfig cfg;
    cfg.app = traffic::AppId::kSingleDtv;
    cfg.generation = sdram::DdrGeneration::kDdr2;
    cfg.clock_mhz = 333.0;
    cfg.sim_cycles = 60000;
    cfg.warmup_cycles = 10000;
    // Measurement configuration: the self-checkers are for tests, not
    // for timing runs (the *_check point below carries them).
    cfg.check = false;
    return cfg;
  };

  {
    Point p{"idle_heavy/gss", base()};
    p.cfg.custom_app = idle_app();
    pts.push_back(std::move(p));
  }
  {
    Point p{"saturated/conv", base()};
    p.cfg.design = core::DesignPoint::kConv;
    pts.push_back(std::move(p));
  }
  {
    Point p{"saturated/gss", base()};
    p.cfg.design = core::DesignPoint::kGss;
    pts.push_back(std::move(p));
  }
  {
    Point p{"saturated/gss_sagm", base()};
    p.cfg.design = core::DesignPoint::kGssSagm;
    p.cfg.priority_enabled = true;
    pts.push_back(std::move(p));
  }
  {
    // The DPQ bounded-latency arbiter on the same saturated traffic:
    // fully serialized service plus the always-on latency-bound oracle
    // (part of the engine's contract, so it is timed here, not hidden
    // behind a _check variant). Compare against saturated/gss for the
    // cost of bounded-latency arbitration.
    Point p{"saturated/dpq", base()};
    p.cfg.design = core::DesignPoint::kGss;
    p.cfg.engine = core::EngineKind::kDpq;
    p.cfg.priority_enabled = true;
    pts.push_back(std::move(p));
  }
  {
    // Same point with the observability counters attached: the delta
    // against saturated/gss_sagm is the cost of event emission (the
    // observe-off points above carry only the null-check branch).
    Point p{"saturated/gss_sagm_observe", base()};
    p.cfg.design = core::DesignPoint::kGssSagm;
    p.cfg.priority_enabled = true;
    p.cfg.observe = core::ObserveLevel::kCounters;
    pts.push_back(std::move(p));
  }
  {
    // annoc_run smoke: the checked-in Table II scenario, loaded fresh
    // inside the timing loop. Compare against saturated/gss_sagm for
    // the loader + longer-window cost.
    Point p{"scenario/table2_gss_sagm", base()};
    p.scenario = std::string(ANNOC_SCENARIO_DIR) + "/table2_gss_sagm.json";
    pts.push_back(std::move(p));
  }
  {
    // Same point with the self-checking layer (timing oracle +
    // conservation) attached: the delta against saturated/gss_sagm is
    // the price every test run pays for checks-on-by-default. Budget:
    // <= 10% on saturated traffic.
    Point p{"saturated/gss_sagm_check", base()};
    p.cfg.design = core::DesignPoint::kGssSagm;
    p.cfg.priority_enabled = true;
    p.cfg.check = true;
    pts.push_back(std::move(p));
  }

  // Fabric scaling (the Fig. 8 flavor): the dual-DTV core mix re-tiled
  // onto growing meshes, the controller count scaling alongside so
  // per-controller load stays comparable. These points track how the
  // per-cycle cost grows with fabric size and how much the event core
  // recovers once a big fabric is only partly busy. Shorter windows
  // than the saturated points: a 16x16 dense run ticks 256 routers per
  // cycle and the ratios converge well before 20k measured cycles.
  const auto scale = [&base](const char* name, const char* preset,
                             std::uint32_t ctrls) {
    Point p{name, base()};
    p.cfg.design = core::DesignPoint::kGssSagm;
    p.cfg.priority_enabled = true;
    p.cfg.app = traffic::AppId::kDualDtv;
    p.cfg.mesh_preset = preset;
    p.cfg.num_controllers = ctrls;
    p.cfg.sim_cycles = 20000;
    p.cfg.warmup_cycles = 4000;
    return p;
  };
  pts.push_back(scale("scale/4x4_1ctrl", "4x4", 1));
  pts.push_back(scale("scale/8x8_2ctrl", "8x8", 2));
  pts.push_back(scale("scale/12x12_4ctrl", "12x12", 4));
  pts.push_back(scale("scale/16x16_8ctrl", "16x16", 8));
  return pts;
}

/// Simulated cycles of one run (what the wall time buys).
std::uint64_t run_cycles(const core::SystemConfig& cfg) {
  core::Simulator sim(cfg);
  const core::Metrics m = sim.run();
  benchmark::DoNotOptimize(m.completed_requests);
  return cfg.warmup_cycles + cfg.sim_cycles + m.drained_cycles;
}

/// Resolve a point to its config for one run: scenario points re-load
/// the file each time (loader overhead is part of what this bench
/// tracks); checks stay off, matching the other measurement points.
std::uint64_t run_point(const Point& p, core::SchedMode mode) {
  core::SystemConfig cfg = p.cfg;
  if (!p.scenario.empty()) {
    cfg = scenario::load_scenario(p.scenario).config;
    cfg.check = false;
  }
  cfg.sched = mode;
  return run_cycles(cfg);
}

void BM_Throughput(benchmark::State& state, Point point,
                   core::SchedMode mode) {
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    cycles += run_point(point, mode);
  }
  // items/sec == simulated cycles per wall second.
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
}

struct PointRates {
  double dense = 0.0;
  double fast = 0.0;
  double event = 0.0;
};

/// Time one point in all three scheduler modes with the mode reps
/// interleaved (dense, ff, event, dense, ff, event, ...): on a shared
/// machine noise is time-correlated, and interleaving spreads every
/// mode across the same measurement window so the recorded *ratios*
/// stay honest even when absolute throughput wobbles. One warmup run
/// per mode (page faults, allocator growth), then best of seven timed
/// samples of two back-to-back runs each — the fastest sample is the
/// least noisy throughput estimator.
PointRates measure_point(const Point& p) {
  using clock = std::chrono::steady_clock;
  constexpr core::SchedMode kModes[] = {core::SchedMode::kDense,
                                        core::SchedMode::kFastForward,
                                        core::SchedMode::kEvent};
  for (const auto mode : kModes) run_point(p, mode);
  double best[3] = {0.0, 0.0, 0.0};
  for (int rep = 0; rep < 7; ++rep) {
    for (int m = 0; m < 3; ++m) {
      const auto t0 = clock::now();
      std::uint64_t cycles = 0;
      for (int r = 0; r < 2; ++r) cycles += run_point(p, kModes[m]);
      const double secs =
          std::chrono::duration<double>(clock::now() - t0).count();
      if (secs > 0.0) {
        best[m] = std::max(best[m], static_cast<double>(cycles) / secs);
      }
    }
  }
  return {best[0], best[1], best[2]};
}

int write_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"sim_throughput\",\n");
  std::fprintf(f, "  \"unit\": \"simulated cycles per wall second\",\n");
  std::fprintf(f,
               "  \"note\": \"mode reps interleaved, best of 7 samples; "
               "saturated-point ratios within ~4%% of 1.0 are the "
               "reference machine's noise floor\",\n");
  std::fprintf(f, "  \"points\": [\n");
  const std::vector<Point> pts = points();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const PointRates rates = measure_point(pts[i]);
    const double dense = rates.dense;
    const double skip = rates.fast;
    const double event = rates.event;
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"dense\": %.0f, "
                 "\"fast_forward\": %.0f, \"event\": %.0f, "
                 "\"speedup\": %.3f, \"speedup_event\": %.3f}%s\n",
                 pts[i].name.c_str(), dense, skip, event,
                 dense > 0.0 ? skip / dense : 0.0,
                 dense > 0.0 ? event / dense : 0.0,
                 i + 1 < pts.size() ? "," : "");
    std::fprintf(stderr,
                 "%-26s dense %11.0f c/s   ff %11.0f c/s (%.2fx)   "
                 "event %11.0f c/s (%.2fx)\n",
                 pts[i].name.c_str(), dense, skip,
                 dense > 0.0 ? skip / dense : 0.0, event,
                 dense > 0.0 ? event / dense : 0.0);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return write_json(i + 1 < argc ? argv[i + 1]
                                     : "BENCH_throughput.json");
    }
  }
  for (const Point& p : points()) {
    benchmark::RegisterBenchmark((p.name + "/dense").c_str(), BM_Throughput,
                                 p, core::SchedMode::kDense)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark((p.name + "/fast_forward").c_str(),
                                 BM_Throughput, p,
                                 core::SchedMode::kFastForward)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark((p.name + "/event").c_str(), BM_Throughput,
                                 p, core::SchedMode::kEvent)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
