/// Command-line fuzz driver: run the randomized differential harness
/// (src/runner/fuzz.hpp) over a range of seeds.
///
///   fuzz_sweep [--seed S] [--runs N]
///
/// Each seed exercises four design points in three execution modes
/// with the self-checking layer attached; a seed passes only if every
/// mode agrees bitwise and the checkers stay silent. Exits non-zero on
/// the first failing seed. CI (sanitize workflow) runs 25 seeds under
/// AddressSanitizer.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runner/fuzz.hpp"

namespace {

std::uint64_t parse_u64(const char* flag, const char* value) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "fuzz_sweep: bad value for %s: '%s'\n", flag, value);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 20260806;
  std::uint64_t runs = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto take = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fuzz_sweep: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = parse_u64("--seed", take("--seed"));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = parse_u64("--seed", arg.c_str() + 7);
    } else if (arg == "--runs") {
      runs = parse_u64("--runs", take("--runs"));
    } else if (arg.rfind("--runs=", 0) == 0) {
      runs = parse_u64("--runs", arg.c_str() + 7);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: fuzz_sweep [--seed S] [--runs N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "fuzz_sweep: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }

  std::printf("fuzz_sweep: %llu run(s) from seed %llu\n",
              static_cast<unsigned long long>(runs),
              static_cast<unsigned long long>(seed));
  for (std::uint64_t i = 0; i < runs; ++i) {
    const std::uint64_t s = seed + i;
    const std::string verdict = annoc::runner::fuzz_seed(s);
    if (!verdict.empty()) {
      std::printf("FAIL seed %llu: %s\n",
                  static_cast<unsigned long long>(s), verdict.c_str());
      return 1;
    }
    std::printf("PASS seed %llu\n", static_cast<unsigned long long>(s));
    std::fflush(stdout);
  }
  std::printf("fuzz_sweep: all %llu seed(s) passed\n",
              static_cast<unsigned long long>(runs));
  return 0;
}
