/// \file sweep_scaling.cpp
/// Sweep-engine scaling and memory-boundedness measurement, recorded
/// at the repo root as BENCH_sweep.json. Three legs over the
/// 1008-job scenarios/sweeps/scaling.json grid:
///
///   1. a quarter of the grid, serial — establishes the steady-state
///      RSS of streaming execution;
///   2. the full grid, serial — ru_maxrss must stay flat despite 4x
///      the jobs (the engine never holds more than workers-many
///      Metrics), and this is the serial wall-clock baseline;
///   3. the full grid, one worker per hardware thread — wall-clock
///      speedup over leg 2 is the scaling figure.
///
/// Usage: sweep_scaling [--json] [--spec=PATH] [--out=DIR]
/// (--out defaults to a disposable directory under TMPDIR; every leg
/// starts from an empty directory.)
#include <sys/resource.h>
#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "explore/executor.hpp"
#include "explore/sweep_spec.hpp"

using namespace annoc;

namespace {

[[nodiscard]] double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[nodiscard]] long max_rss_kb() {
  rusage u{};
  getrusage(RUSAGE_SELF, &u);
  return u.ru_maxrss;
}

void remove_tree(const std::string& dir) {
  const std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] const int rc = std::system(cmd.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string spec_path = std::string(ANNOC_SCENARIO_DIR) +
                          "/sweeps/scaling.json";
  const char* tmpdir = std::getenv("TMPDIR");
  std::string out_base = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                         "/annoc_sweep_scaling." +
                         std::to_string(static_cast<long>(getpid()));
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--json") == 0) {
      json = true;
    } else if (std::strncmp(a, "--spec=", 7) == 0) {
      spec_path = a + 7;
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      out_base = a + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--json] [--spec=PATH] [--out=DIR]\n",
                   argv[0]);
      return 2;
    }
  }

  explore::SweepSpec spec;
  try {
    spec = explore::load_sweep_spec(spec_path);
  } catch (const ParseError& e) {
    std::fprintf(stderr, "%s\n", e.to_string());
    return 1;
  }
  const std::uint64_t total = spec.job_count();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  const auto leg = [&](const char* name, unsigned jobs,
                       std::uint64_t max_jobs) -> double {
    explore::ExecutorOptions opts;
    opts.out_dir = out_base + "/" + name;
    opts.jobs = jobs;
    opts.max_jobs = max_jobs;
    remove_tree(opts.out_dir);
    const double t0 = now_seconds();
    const explore::SweepOutcome out = explore::run_sweep(spec, opts);
    const double dt = now_seconds() - t0;
    std::fprintf(stderr, "%s: %llu jobs, %u worker(s), %.2fs, rss %ld kB\n",
                 name, static_cast<unsigned long long>(out.completed_now),
                 jobs, dt, max_rss_kb());
    return dt;
  };

  // ru_maxrss is a per-process high-water mark: leg order matters.
  // The quarter-grid leg sets the streaming steady state; if the full
  // grid then pushes the mark up, memory is scaling with sweep size
  // and the bounded-memory contract is broken.
  (void)leg("quarter_serial", 1, total / 4);
  const long rss_quarter_kb = max_rss_kb();
  const double serial_s = leg("full_serial", 1, 0);
  const long rss_full_kb = max_rss_kb();
  const double parallel_s = leg("full_parallel", hw, 0);
  remove_tree(out_base);

  const double scaling = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
  const double linear_fraction = scaling / static_cast<double>(hw);
  const double rss_ratio =
      rss_quarter_kb > 0
          ? static_cast<double>(rss_full_kb) / static_cast<double>(rss_quarter_kb)
          : 0.0;

  std::FILE* out = json ? stdout : stderr;
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"sweep_scaling\",\n"
               "  \"spec\": \"%s\",\n"
               "  \"total_jobs\": %llu,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"serial_seconds\": %.3f,\n"
               "  \"parallel_seconds\": %.3f,\n"
               "  \"scaling_x\": %.3f,\n"
               "  \"linear_fraction\": %.3f,\n"
               "  \"rss_quarter_kb\": %ld,\n"
               "  \"rss_full_kb\": %ld,\n"
               "  \"rss_ratio\": %.3f\n"
               "}\n",
               spec.name.c_str(), static_cast<unsigned long long>(total), hw,
               serial_s, parallel_s, scaling, linear_fraction, rss_quarter_kb,
               rss_full_kb, rss_ratio);
  return 0;
}
