/// \file bench_util.hpp
/// Shared machinery for the table/figure reproduction benches: the nine
/// application x clock rows of Tables I/II, the --jobs command line
/// shared by every bench binary, batch execution through the
/// ExperimentRunner, and paper-vs-measured formatting helpers.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "core/simulator.hpp"
#include "runner/experiment_runner.hpp"

namespace annoc::bench {

/// One application/clock operating point of the paper's evaluation.
struct Row {
  traffic::AppId app;
  sdram::DdrGeneration gen;
  double mhz;
};

/// The nine rows of Tables I and II, in paper order.
inline std::vector<Row> table_rows() {
  using traffic::AppId;
  using sdram::DdrGeneration;
  return {
      {AppId::kBluray, DdrGeneration::kDdr1, 133.0},
      {AppId::kBluray, DdrGeneration::kDdr2, 266.0},
      {AppId::kBluray, DdrGeneration::kDdr3, 533.0},
      {AppId::kSingleDtv, DdrGeneration::kDdr1, 166.0},
      {AppId::kSingleDtv, DdrGeneration::kDdr2, 333.0},
      {AppId::kSingleDtv, DdrGeneration::kDdr3, 667.0},
      {AppId::kDualDtv, DdrGeneration::kDdr1, 200.0},
      {AppId::kDualDtv, DdrGeneration::kDdr2, 400.0},
      {AppId::kDualDtv, DdrGeneration::kDdr3, 800.0},
  };
}

inline const char* row_label(const Row& r) {
  static thread_local char buf[64];
  std::snprintf(buf, sizeof buf, "%-10s %-7s %4.0fMHz", to_string(r.app),
                to_string(r.gen), r.mhz);
  return buf;
}

/// Simulation length knobs (override with ANNOC_SIM_CYCLES /
/// ANNOC_WARMUP_CYCLES; the paper runs 1M cycles — the defaults keep
/// every bench binary under a few minutes while staying converged).
inline Cycle sim_cycles() { return env_u64("ANNOC_SIM_CYCLES", 80000); }
inline Cycle warmup_cycles() { return env_u64("ANNOC_WARMUP_CYCLES", 15000); }

inline core::SystemConfig make_config(const Row& row, core::DesignPoint d,
                                      bool priority) {
  core::SystemConfig cfg;
  cfg.design = d;
  cfg.app = row.app;
  cfg.generation = row.gen;
  cfg.clock_mhz = row.mhz;
  cfg.priority_enabled = priority;
  cfg.sim_cycles = sim_cycles();
  cfg.warmup_cycles = warmup_cycles();
  return cfg;
}

/// The worker-count knob every bench binary shares: `--jobs N` /
/// `--jobs=N` / `-j N`, then ANNOC_JOBS, then 0 (= hardware
/// concurrency). See runner::parse_jobs.
inline unsigned parse_jobs(int argc, char** argv) {
  return runner::parse_jobs(argc, argv);
}

/// Build a runner for a bench binary: honors the jobs knob and, when
/// ANNOC_PROGRESS is set, reports per-run completion on stderr.
inline runner::ExperimentRunner make_runner(unsigned jobs) {
  runner::RunnerOptions opts;
  opts.jobs = jobs;
  if (env_flag("ANNOC_PROGRESS", false)) {
    opts.on_progress = [](const runner::ProgressEvent& ev) {
      std::fprintf(stderr, "[%zu/%zu] run %zu finished in %.2fs\n",
                   ev.completed, ev.total, ev.index, ev.wall_seconds);
    };
  }
  return runner::ExperimentRunner(opts);
}

/// Run a batch of configurations through the ExperimentRunner and
/// return the metrics in submission order. Results are bit-identical
/// for every jobs value; jobs only changes wall-clock.
inline std::vector<core::Metrics> run_batch(
    const std::vector<core::SystemConfig>& configs, unsigned jobs = 0) {
  return make_runner(jobs).run_metrics(configs);
}

/// Geometric-mean style average of a column.
inline double mean_of(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace annoc::bench
