/// \file table2_priority.cpp
/// Reproduces **Table II**: comparison on the industrial benchmarks
/// *with* priority memory requests (MPU demand requests are tagged
/// priority). Designs: CONV+PFS, [4]+PFS, GSS, GSS+SAGM. As in the
/// paper, the ratio row is computed against the plain [4] design from
/// Table I (no priority), which is simulated alongside.
#include <array>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace annoc;
using core::DesignPoint;

namespace {

constexpr std::array<DesignPoint, 4> kDesigns = {
    DesignPoint::kConvPfs, DesignPoint::kRef4Pfs, DesignPoint::kGss,
    DesignPoint::kGssSagm};

// Paper Table II values, [row][design].
constexpr double kPaperUtil[9][4] = {
    {0.729, 0.742, 0.770, 0.774}, {0.612, 0.621, 0.699, 0.745},
    {0.454, 0.517, 0.561, 0.608}, {0.676, 0.699, 0.755, 0.779},
    {0.580, 0.613, 0.684, 0.738}, {0.387, 0.489, 0.534, 0.559},
    {0.655, 0.675, 0.700, 0.709}, {0.521, 0.577, 0.608, 0.657},
    {0.405, 0.481, 0.518, 0.530}};
constexpr double kPaperLatAll[9][4] = {
    {141, 106, 77, 72},   {176, 134, 112, 96},  {248, 166, 151, 138},
    {163, 124, 96, 76},   {192, 143, 116, 107}, {309, 182, 158, 151},
    {183, 124, 103, 80},  {280, 178, 153, 127}, {389, 252, 210, 207}};
constexpr double kPaperLatPrio[9][4] = {
    {97, 59, 42, 38},    {123, 73, 72, 60},   {179, 88, 98, 90},
    {105, 64, 57, 41},   {128, 74, 72, 66},   {213, 94, 98, 95},
    {131, 62, 55, 36},   {156, 81, 78, 68},   {198, 104, 101, 99}};

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = bench::parse_jobs(argc, argv);
  const auto rows = bench::table_rows();
  std::vector<core::SystemConfig> cfgs;
  for (const auto& row : rows) {
    for (const DesignPoint d : kDesigns) {
      cfgs.push_back(bench::make_config(row, d, /*priority=*/true));
    }
    // Reference: plain [4] without priority (Table I baseline).
    cfgs.push_back(
        bench::make_config(row, DesignPoint::kRef4, /*priority=*/false));
  }
  std::printf("Table II — with priority memory requests (%llu measured "
              "cycles per point; ratios vs [4] of Table I)\n\n",
              static_cast<unsigned long long>(bench::sim_cycles()));
  const auto metrics = bench::run_batch(cfgs, jobs);
  const std::size_t stride = kDesigns.size() + 1;

  struct Column {
    const char* title;
    double (*get)(const core::Metrics&);
    const double (*paper)[4];
    bool is_util;
  };
  const Column columns[3] = {
      {"Memory utilization",
       [](const core::Metrics& m) { return m.utilization; }, kPaperUtil,
       true},
      {"Memory latency, all packets (cycles)",
       [](const core::Metrics& m) { return m.avg_latency_all(); },
       kPaperLatAll, false},
      {"Memory latency, priority packets (cycles)",
       [](const core::Metrics& m) { return m.avg_latency_priority(); },
       kPaperLatPrio, false},
  };

  for (const Column& col : columns) {
    std::printf("== %s ==\n", col.title);
    std::printf("%-26s |", "application / clock");
    for (const DesignPoint d : kDesigns) std::printf(" %12s", to_string(d));
    std::printf(" | paper: C+PFS [4]+PFS GSS +SAGM\n");
    bench::print_rule(116);

    std::vector<double> avg(kDesigns.size(), 0.0);
    std::vector<double> paper_avg(kDesigns.size(), 0.0);
    double base_avg = 0.0;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      std::printf("%-26s |", bench::row_label(rows[r]));
      for (std::size_t d = 0; d < kDesigns.size(); ++d) {
        const double v = col.get(metrics[r * stride + d]);
        avg[d] += v / static_cast<double>(rows.size());
        paper_avg[d] += col.paper[r][d] / static_cast<double>(rows.size());
        std::printf(col.is_util ? "       %6.3f" : "       %6.1f", v);
      }
      base_avg +=
          col.get(metrics[r * stride + kDesigns.size()]) /
          static_cast<double>(rows.size());
      std::printf(" |");
      for (std::size_t d = 0; d < kDesigns.size(); ++d) {
        std::printf(col.is_util ? " %5.3f" : " %5.0f", col.paper[r][d]);
      }
      std::printf("\n");
    }
    bench::print_rule(116);
    std::printf("%-26s |", "average");
    for (const double v : avg) {
      std::printf(col.is_util ? "       %6.3f" : "       %6.1f", v);
    }
    std::printf("\n%-26s |", "ratio vs [4] (Table I)");
    for (const double v : avg) std::printf("       %6.3f", v / base_avg);
    std::printf("\n\n");
  }

  std::printf(
      "Shape checks (paper): [4]+PFS buys priority latency at a real cost\n"
      "in utilization and latency-all; GSS gets a bigger priority gain at\n"
      "a far smaller cost; GSS+SAGM additionally recovers utilization and\n"
      "improves every column (ratios ~1.034 / 0.922 / 0.672 vs [4]).\n");
  return 0;
}
