/// \file ablation_controller.cpp
/// Ablations of the modelling decisions DESIGN.md calls out around the
/// memory controller and the address map:
///
/// 1. **Controller smarts vs router-level STI** — the explanation for
///    deviation D3 in EXPERIMENTS.md. With the command engine dialled
///    down to a strictly in-order, no-look-ahead controller (the
///    closest analogue of the paper's buffer pipeline, where the
///    *routers* are the only reordering agent), the Fig. 4(b) STI
///    filter's contribution should grow toward the paper's Table III
///    magnitudes; with the smart engine it nearly vanishes.
///
/// 2. **Address-map chunk size** — how finely banks are striped across
///    the address space. Coarse striping starves the schedulers of
///    bank-level parallelism and makes SAGM's AP-trains collide with
///    their own stream; the 256-byte default sits near the knee.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace annoc;
using core::DesignPoint;

int main(int argc, char** argv) {
  const unsigned jobs = bench::parse_jobs(argc, argv);
  // --- 1. controller smarts x STI -------------------------------------
  {
    struct EngineCfg {
      const char* name;
      std::uint32_t lookahead, reorder;
    };
    const std::vector<EngineCfg> engines = {
        {"in-order, no look-ahead", 0, 1},
        {"look-ahead 4, in-order data", 4, 1},
        {"look-ahead 16, slip 8 (default)", 16, 8},
    };
    std::printf("Ablation 1 — STI benefit vs controller sophistication\n"
                "(dual DTV, DDR III @ 800 MHz; STI gain = GSS+SAGM+STI "
                "over GSS+SAGM)\n\n");
    std::printf("%-34s %12s %12s %12s\n", "controller", "util base",
                "util +STI", "STI gain");
    bench::print_rule(76);
    for (const EngineCfg& e : engines) {
      std::vector<core::SystemConfig> cfgs;
      for (const DesignPoint d :
           {DesignPoint::kGssSagm, DesignPoint::kGssSagmSti}) {
        bench::Row row{traffic::AppId::kDualDtv,
                       sdram::DdrGeneration::kDdr3, 800.0};
        core::SystemConfig cfg = bench::make_config(row, d, true);
        cfg.engine_lookahead = e.lookahead;
        cfg.engine_reorder_depth = e.reorder;
        cfgs.push_back(cfg);
      }
      const auto m = bench::run_batch(cfgs, jobs);
      const double base = m[0].utilization, sti = m[1].utilization;
      std::printf("%-34s %12.3f %12.3f %+11.1f%%\n", e.name, base, sti,
                  base > 0 ? (sti - base) / base * 100.0 : 0.0);
    }
    std::printf("\n");
  }

  // --- 2. chunk-size sweep ---------------------------------------------
  {
    const std::vector<std::uint32_t> chunks = {4096, 1024, 512, 256, 128};
    std::printf("Ablation 2 — address-map bank-striping granularity\n"
                "(single DTV, DDR II @ 333 MHz; 4096 = one row per bank "
                "switch)\n\n");
    std::printf("%-12s | %22s | %22s\n", "chunk bytes", "GSS util / lat-all",
                "GSS+SAGM util / lat-all");
    bench::print_rule(66);
    for (const std::uint32_t chunk : chunks) {
      std::vector<core::SystemConfig> cfgs;
      for (const DesignPoint d : {DesignPoint::kGss, DesignPoint::kGssSagm}) {
        bench::Row row{traffic::AppId::kSingleDtv,
                       sdram::DdrGeneration::kDdr2, 333.0};
        core::SystemConfig cfg = bench::make_config(row, d, true);
        cfg.map_chunk_bytes = chunk;
        cfgs.push_back(cfg);
      }
      const auto m = bench::run_batch(cfgs, jobs);
      std::printf("%-12u | %8.3f / %8.1f cy | %8.3f / %8.1f cy\n", chunk,
                  m[0].utilization, m[0].avg_latency_all(),
                  m[1].utilization, m[1].avg_latency_all());
    }
  }

  // --- 3. routing policy ------------------------------------------------
  {
    std::printf("\nAblation 3 — XY vs minimal adaptive routing (GSS)\n\n");
    std::printf("%-12s | %22s | %22s\n", "app", "XY util / lat-prio",
                "adaptive util / lat-prio");
    bench::print_rule(64);
    for (const traffic::AppId app :
         {traffic::AppId::kSingleDtv, traffic::AppId::kDualDtv}) {
      std::vector<core::SystemConfig> cfgs;
      for (const bool adaptive : {false, true}) {
        bench::Row row{app, sdram::DdrGeneration::kDdr2,
                       app == traffic::AppId::kDualDtv ? 400.0 : 333.0};
        core::SystemConfig cfg =
            bench::make_config(row, DesignPoint::kGss, true);
        cfg.adaptive_routing = adaptive;
        cfgs.push_back(cfg);
      }
      const auto m = bench::run_batch(cfgs, jobs);
      std::printf("%-12s | %8.3f / %8.1f cy | %8.3f / %8.1f cy\n",
                  to_string(app), m[0].utilization,
                  m[0].avg_latency_priority(), m[1].utilization,
                  m[1].avg_latency_priority());
    }
  }

  std::printf(
      "\nExpected shapes: (1) the STI gain grows as the controller gets\n"
      "dumber — with a strictly in-order engine the router-level STI\n"
      "filter is the only agent avoiding turnaround stalls, as in the\n"
      "paper's RTL; (2) finer striping helps both designs, SAGM more\n"
      "(its AP-trains stop colliding with their own stream), with\n"
      "diminishing returns below ~256 B (and at 128 B the workload's own\n"
      "request sizes change — masters split at the interleave boundary);\n"
      "(3) adaptive routing lands in the same class as XY on these\n"
      "memory-bound workloads (the paper uses XY; GSS supports either).\n");
  return 0;
}
