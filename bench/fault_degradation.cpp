/// \file fault_degradation.cpp
/// Degradation under partial failure (EXPERIMENTS.md, "Degradation
/// under partial failure"): escalate a random fault schedule on two
/// checked-in scenarios and print the trajectories the chapter quotes.
///
///   - faults/gss_escalation.json — GSS+SAGM with priority on: how the
///     priority class's latency promise erodes. "Priority violations"
///     counts priority subpackets whose end-to-end latency exceeds the
///     fault-free run's worst case.
///   - faults/dpq_escalation.json — the DPQ bounded-latency arbiter:
///     the analytic WCET bound and the minimum observed margin
///     (bound - latency) per level. Link/router faults may erode the
///     *network* stage, but the memory-stage bound must hold — the
///     LatencyBoundOracle aborts the run if it ever does not.
///
/// Escalation overrides only `fault.count` (a sweepable knob); the
/// schedule is a pure function of the checked-in fault.seed, so levels
/// nest: level N's faults are the first N of level N+1's.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/sink.hpp"
#include "scenario/scenario.hpp"

#ifndef ANNOC_SCENARIO_DIR
#define ANNOC_SCENARIO_DIR "scenarios"
#endif

using namespace annoc;

namespace {

/// Count priority-class subpackets slower end-to-end than a budget.
class PriorityViolationSink final : public obs::EventSink {
 public:
  explicit PriorityViolationSink(Cycle budget) : budget_(budget) {}
  void on_subpacket(const obs::SubpacketRecord& rec) override {
    if (rec.svc != ServiceClass::kPriority) return;
    ++priority_total_;
    const Cycle lat = rec.done - rec.created;
    max_latency_ = std::max(max_latency_, lat);
    if (budget_ != 0 && lat > budget_) ++violations_;
  }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }
  [[nodiscard]] std::uint64_t priority_total() const {
    return priority_total_;
  }
  [[nodiscard]] Cycle max_latency() const { return max_latency_; }

 private:
  Cycle budget_;
  std::uint64_t violations_ = 0;
  std::uint64_t priority_total_ = 0;
  Cycle max_latency_ = 0;
};

/// Track the DPQ bound and the tightest observed margin under it.
class DpqMarginSink final : public obs::EventSink {
 public:
  void on_dpq_retire(const obs::DpqRetireEvent& ev) override {
    bound_ = ev.bound;
    const Cycle margin = ev.bound >= ev.latency ? ev.bound - ev.latency : 0;
    if (!seen_ || margin < min_margin_) min_margin_ = margin;
    seen_ = true;
  }
  [[nodiscard]] Cycle bound() const { return bound_; }
  [[nodiscard]] Cycle min_margin() const { return seen_ ? min_margin_ : 0; }

 private:
  Cycle bound_ = 0;
  Cycle min_margin_ = 0;
  bool seen_ = false;
};

const std::uint32_t kLevels[] = {0, 1, 2, 4, 8};

void run_gss_leg() {
  const scenario::Scenario s = scenario::load_scenario(
      std::string(ANNOC_SCENARIO_DIR) + "/faults/gss_escalation.json");
  std::printf("\n%s — priority promise under escalating faults\n",
              s.name.c_str());
  std::printf("%-7s %-12s %-10s %-10s %-10s %-10s %-10s\n", "count",
              "activations", "util", "prio p99", "prio max", "violations",
              "all mean");
  bench::print_rule(76);
  Cycle budget = 0;
  for (const std::uint32_t count : kLevels) {
    core::SystemConfig cfg = s.config;
    cfg.fault_count = count;
    core::Simulator sim(cfg);
    PriorityViolationSink prio(budget);
    sim.attach_sink(&prio);
    const core::Metrics m = sim.run();
    if (count == 0) budget = prio.max_latency();  // fault-free worst case
    const std::uint64_t activations =
        m.fault.dead_link_activations + m.fault.degraded_link_activations +
        m.fault.slow_router_activations + m.fault.refresh_storm_activations +
        m.fault.throttled_bank_activations;
    std::printf("%-7u %-12llu %-10.3f %-10llu %-10llu %-10llu %-10.1f\n",
                count, static_cast<unsigned long long>(activations),
                m.utilization,
                static_cast<unsigned long long>(m.priority_packets.p99()),
                static_cast<unsigned long long>(prio.max_latency()),
                static_cast<unsigned long long>(prio.violations()),
                m.all_packets.mean());
  }
  std::printf("violations = priority subpackets slower end-to-end than the\n"
              "fault-free run's worst case (%llu cycles)\n",
              static_cast<unsigned long long>(budget));
}

void run_dpq_leg() {
  const scenario::Scenario s = scenario::load_scenario(
      std::string(ANNOC_SCENARIO_DIR) + "/faults/dpq_escalation.json");
  std::printf("\n%s — WCET bound margin under escalating faults\n",
              s.name.c_str());
  std::printf("%-7s %-12s %-10s %-10s %-12s %-12s %-10s\n", "count",
              "activations", "util", "mem max", "bound", "min margin",
              "all mean");
  bench::print_rule(78);
  for (const std::uint32_t count : kLevels) {
    core::SystemConfig cfg = s.config;
    cfg.fault_count = count;
    core::Simulator sim(cfg);
    DpqMarginSink margin;
    sim.attach_sink(&margin);
    const core::Metrics m = sim.run();
    const std::uint64_t activations =
        m.fault.dead_link_activations + m.fault.degraded_link_activations +
        m.fault.slow_router_activations + m.fault.refresh_storm_activations +
        m.fault.throttled_bank_activations;
    std::printf("%-7u %-12llu %-10.3f %-10.0f %-12llu %-12llu %-10.1f\n",
                count, static_cast<unsigned long long>(activations),
                m.utilization, m.memory.max(),
                static_cast<unsigned long long>(margin.bound()),
                static_cast<unsigned long long>(margin.min_margin()),
                m.all_packets.mean());
  }
  std::printf("min margin = bound - observed memory-stage latency; the\n"
              "LatencyBoundOracle would abort this bench if it ever went\n"
              "negative.\n");
}

}  // namespace

int main() {
  run_gss_leg();
  run_dpq_leg();
  return 0;
}
