/// \file micro_hotpaths.cpp
/// google-benchmark microbenchmarks of the simulator's hot paths: the
/// DDR device command legality check and issue, the GSS arbitration
/// (Algorithm 1 with the Fig. 4 filter ladder), the command engine, and
/// a full simulator step. These guard the performance envelope of the
/// cycle-level model (whole-table benches run ~100 simulations).
#include <benchmark/benchmark.h>

#include "core/simulator.hpp"
#include "memctrl/streamlined.hpp"
#include "noc/fc_gss.hpp"
#include "sdram/device.hpp"

using namespace annoc;

namespace {

sdram::DeviceConfig make_device_config() {
  sdram::DeviceConfig dc;
  dc.generation = sdram::DdrGeneration::kDdr2;
  dc.clock_mhz = 400.0;
  dc.burst_mode = sdram::BurstMode::kBl8;
  dc.geometry = sdram::default_geometry(dc.generation);
  return dc;
}

void BM_DeviceIssueStream(benchmark::State& state) {
  sdram::Device dev(make_device_config());
  Cycle now = 0;
  sdram::Command act;
  act.type = sdram::CommandType::kActivate;
  act.bank = 0;
  act.row = 1;
  std::uint64_t issued = 0;
  for (auto _ : state) {
    dev.tick(now);
    sdram::Command cas;
    cas.type = sdram::CommandType::kRead;
    cas.bank = static_cast<BankId>(issued % dev.num_banks());
    cas.row = 1;
    cas.col = static_cast<ColId>((issued * 8) % 1024);
    cas.burst_beats = 8;
    cas.useful_beats = 8;
    if (dev.can_issue(cas, now)) {
      dev.issue(cas, now);
      ++issued;
    } else {
      act.bank = cas.bank;
      if (dev.can_issue(act, now)) dev.issue(act, now);
    }
    ++now;
  }
  state.counters["cas_per_cycle"] =
      static_cast<double>(issued) / static_cast<double>(now ? now : 1);
}
BENCHMARK(BM_DeviceIssueStream);

void BM_GssSelect(benchmark::State& state) {
  noc::GssParams params;
  params.pct = 4;
  params.timing = sdram::make_timing(sdram::DdrGeneration::kDdr2, 400.0);
  noc::GssFlowController fc(params, /*sti=*/true);

  std::vector<noc::Packet> pkts(4);
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    pkts[i].loc.bank = static_cast<BankId>(i % 4);
    pkts[i].loc.row = static_cast<RowId>(i);
    pkts[i].rw = i % 2 ? RW::kRead : RW::kWrite;
    pkts[i].svc = i == 0 ? ServiceClass::kPriority : ServiceClass::kBestEffort;
    pkts[i].gss_tokens = static_cast<std::uint32_t>(1 + i % 5);
  }
  std::vector<noc::Candidate> cands;
  std::vector<noc::Packet*> pool;
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    cands.push_back({&pkts[i], static_cast<std::uint32_t>(i)});
    pool.push_back(&pkts[i]);
  }
  Cycle now = 0;
  for (auto _ : state) {
    auto sel = fc.select(cands, pool, now);
    benchmark::DoNotOptimize(sel);
    if (sel) fc.on_scheduled(*cands[*sel].pkt, now);
    ++now;
  }
}
BENCHMARK(BM_GssSelect);

void BM_SimulatorStep(benchmark::State& state) {
  core::SystemConfig cfg;
  cfg.design = core::DesignPoint::kGssSagm;
  cfg.app = traffic::AppId::kSingleDtv;
  cfg.generation = sdram::DdrGeneration::kDdr2;
  cfg.clock_mhz = 333.0;
  cfg.priority_enabled = true;
  cfg.warmup_cycles = 0;
  core::Simulator sim(cfg);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.now()));
}
BENCHMARK(BM_SimulatorStep);

void BM_FullShortSimulation(benchmark::State& state) {
  for (auto _ : state) {
    core::SystemConfig cfg;
    cfg.design = core::DesignPoint::kGss;
    cfg.app = traffic::AppId::kBluray;
    cfg.generation = sdram::DdrGeneration::kDdr1;
    cfg.clock_mhz = 133.0;
    cfg.priority_enabled = false;
    cfg.sim_cycles = 5000;
    cfg.warmup_cycles = 1000;
    const core::Metrics m = core::run_simulation(cfg);
    benchmark::DoNotOptimize(m.utilization);
  }
}
BENCHMARK(BM_FullShortSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
