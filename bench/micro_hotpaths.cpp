/// \file micro_hotpaths.cpp
/// google-benchmark microbenchmarks of the simulator's hot paths: the
/// DDR device command legality check and issue, the GSS arbitration
/// (Algorithm 1 with the Fig. 4 filter ladder), the command engine, and
/// a full simulator step. These guard the performance envelope of the
/// cycle-level model (whole-table benches run ~100 simulations).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/simulator.hpp"
#include "memctrl/streamlined.hpp"
#include "noc/fc_gss.hpp"
#include "noc/network.hpp"
#include "sdram/device.hpp"

/// Global allocation counter: BM_NetworkTickAllocs asserts the router
/// arbitration hot path settles to zero heap traffic per cycle (the
/// per-output candidate pools and arbitration scratch buffers are
/// reused, not rebuilt).
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

// GCC warns "mismatched allocation function" because it pattern-matches
// malloc/free inside replaced operators; the pairing here is correct.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

using namespace annoc;

namespace {

sdram::DeviceConfig make_device_config() {
  sdram::DeviceConfig dc;
  dc.generation = sdram::DdrGeneration::kDdr2;
  dc.clock_mhz = 400.0;
  dc.burst_mode = sdram::BurstMode::kBl8;
  dc.geometry = sdram::default_geometry(dc.generation);
  return dc;
}

void BM_DeviceIssueStream(benchmark::State& state) {
  sdram::Device dev(make_device_config());
  Cycle now = 0;
  sdram::Command act;
  act.type = sdram::CommandType::kActivate;
  act.bank = 0;
  act.row = 1;
  std::uint64_t issued = 0;
  for (auto _ : state) {
    dev.tick(now);
    sdram::Command cas;
    cas.type = sdram::CommandType::kRead;
    cas.bank = static_cast<BankId>(issued % dev.num_banks());
    cas.row = 1;
    cas.col = static_cast<ColId>((issued * 8) % 1024);
    cas.burst_beats = 8;
    cas.useful_beats = 8;
    if (dev.can_issue(cas, now)) {
      dev.issue(cas, now);
      ++issued;
    } else {
      act.bank = cas.bank;
      if (dev.can_issue(act, now)) dev.issue(act, now);
    }
    ++now;
  }
  state.counters["cas_per_cycle"] =
      static_cast<double>(issued) / static_cast<double>(now ? now : 1);
}
BENCHMARK(BM_DeviceIssueStream);

void BM_GssSelect(benchmark::State& state) {
  noc::GssParams params;
  params.pct = 4;
  params.timing = sdram::make_timing(sdram::DdrGeneration::kDdr2, 400.0);
  noc::GssFlowController fc(params, /*sti=*/true);

  std::vector<noc::Packet> pkts(4);
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    pkts[i].loc.bank = static_cast<BankId>(i % 4);
    pkts[i].loc.row = static_cast<RowId>(i);
    pkts[i].rw = i % 2 ? RW::kRead : RW::kWrite;
    pkts[i].svc = i == 0 ? ServiceClass::kPriority : ServiceClass::kBestEffort;
    pkts[i].gss_tokens = static_cast<std::uint32_t>(1 + i % 5);
  }
  std::vector<noc::Candidate> cands;
  std::vector<noc::Packet*> pool;
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    cands.push_back({&pkts[i], static_cast<std::uint32_t>(i)});
    pool.push_back(&pkts[i]);
  }
  Cycle now = 0;
  for (auto _ : state) {
    auto sel = fc.select(cands, pool, now);
    benchmark::DoNotOptimize(sel);
    if (sel) fc.on_scheduled(*cands[*sel].pkt, now);
    ++now;
  }
}
BENCHMARK(BM_GssSelect);

void BM_SimulatorStep(benchmark::State& state) {
  core::SystemConfig cfg;
  cfg.design = core::DesignPoint::kGssSagm;
  cfg.app = traffic::AppId::kSingleDtv;
  cfg.generation = sdram::DdrGeneration::kDdr2;
  cfg.clock_mhz = 333.0;
  cfg.priority_enabled = true;
  cfg.warmup_cycles = 0;
  core::Simulator sim(cfg);
  for (auto _ : state) {
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sim.now()));
}
BENCHMARK(BM_SimulatorStep);

void BM_NetworkTickAllocs(benchmark::State& state) {
  // A 3x3 GSS mesh kept saturated from two far corners; after warmup
  // the arbitration path (candidate collection, filter ladder, grants,
  // hop forwarding) must run without touching the heap — the
  // allocs_per_tick counter is the regression guard.
  noc::NocConfig nc;
  nc.width = 3;
  nc.height = 3;
  nc.mem_node = 0;
  noc::GssParams params;
  params.pct = 4;
  params.timing = sdram::make_timing(sdram::DdrGeneration::kDdr2, 400.0);
  noc::Network net(nc, {noc::FlowControlKind::kGss}, params);

  class AcceptAll final : public noc::PacketSink {
   public:
    bool can_accept(const noc::Packet&) const override { return true; }
    void deliver(noc::Packet&&, Cycle) override {}
  };
  AcceptAll sink;
  net.attach_sink(&sink);

  PacketId next_id = 1;
  Cycle now = 0;
  const auto inject_from = [&](NodeId src) {
    noc::Packet p;
    p.id = next_id;
    p.parent_id = next_id;
    p.src_node = src;
    p.dst_node = nc.mem_node;
    p.flits = 4;
    p.useful_beats = 8;
    p.useful_bytes = 32;
    p.loc.bank = static_cast<BankId>(next_id % 4);
    p.loc.row = static_cast<RowId>(next_id / 4 % 64);
    p.created = now;
    if (net.try_inject(std::move(p), now)) ++next_id;
  };
  for (; now < 5000; ++now) {  // steady state: pools/scratch at capacity
    inject_from(8);
    inject_from(6);
    net.tick(now);
  }

  const std::uint64_t allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  std::uint64_t ticks = 0;
  for (auto _ : state) {
    inject_from(8);
    inject_from(6);
    net.tick(now);
    ++now;
    ++ticks;
  }
  const std::uint64_t allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_tick"] =
      static_cast<double>(allocs) / static_cast<double>(ticks ? ticks : 1);
}
BENCHMARK(BM_NetworkTickAllocs);

void BM_FullShortSimulation(benchmark::State& state) {
  for (auto _ : state) {
    core::SystemConfig cfg;
    cfg.design = core::DesignPoint::kGss;
    cfg.app = traffic::AppId::kBluray;
    cfg.generation = sdram::DdrGeneration::kDdr1;
    cfg.clock_mhz = 133.0;
    cfg.priority_enabled = false;
    cfg.sim_cycles = 5000;
    cfg.warmup_cycles = 1000;
    const core::Metrics m = core::run_simulation(cfg);
    benchmark::DoNotOptimize(m.utilization);
  }
}
BENCHMARK(BM_FullShortSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
