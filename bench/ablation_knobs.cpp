/// \file ablation_knobs.cpp
/// Ablations of the paper's two tunable mechanisms:
///
/// 1. **PCT sweep** (Section IV-B): the priority control token
///    interpolates between priority-equal (PCT=1) and priority-first
///    (PCT=max). Sweeping PCT for the GSS design shows the paper's
///    claimed dial: priority latency falls with PCT while overall
///    utilization/latency pay a growing (small) cost.
///
/// 2. **Split-granularity sweep** (Section IV-C): SAGM's subpacket size
///    per DDR generation. The paper's choice — 4 beats (one BL4 CAS) on
///    DDR I/II, 8 beats on DDR III (tCCD=4) — should sit at the sweet
///    spot of each curve.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace annoc;
using core::DesignPoint;

int main(int argc, char** argv) {
  const unsigned jobs = bench::parse_jobs(argc, argv);
  // --- PCT sweep -----------------------------------------------------
  {
    std::vector<core::SystemConfig> cfgs;
    const std::vector<std::uint32_t> pcts = {1, 2, 3, 4, 5};
    for (const std::uint32_t pct : pcts) {
      bench::Row row{traffic::AppId::kSingleDtv,
                     sdram::DdrGeneration::kDdr2, 333.0};
      core::SystemConfig cfg =
          bench::make_config(row, DesignPoint::kGss, /*priority=*/true);
      cfg.pct = pct;
      cfgs.push_back(cfg);
    }
    const auto metrics = bench::run_batch(cfgs, jobs);
    std::printf("Ablation 1 — priority control token (GSS, single DTV, "
                "DDR II @ 333 MHz)\n");
    std::printf("PCT=1 is priority-equal; PCT=5 is priority-first "
                "(Section IV-B).\n\n");
    std::printf("%-6s %14s %18s %22s\n", "PCT", "utilization",
                "latency all (cy)", "latency priority (cy)");
    bench::print_rule(64);
    for (std::size_t i = 0; i < pcts.size(); ++i) {
      std::printf("%-6u %14.3f %18.1f %22.1f\n", pcts[i],
                  metrics[i].utilization, metrics[i].avg_latency_all(),
                  metrics[i].avg_latency_priority());
    }
    std::printf("\n");
  }

  // --- split-granularity sweep ----------------------------------------
  {
    struct Gen {
      sdram::DdrGeneration gen;
      double mhz;
      std::uint32_t paper_choice;
    };
    const std::vector<Gen> gens = {
        {sdram::DdrGeneration::kDdr1, 166.0, 4},
        {sdram::DdrGeneration::kDdr2, 333.0, 4},
        {sdram::DdrGeneration::kDdr3, 667.0, 8},
    };
    const std::vector<std::uint32_t> grans = {4, 8, 16, 32};
    std::printf("Ablation 2 — SAGM split granularity (GSS+SAGM, single "
                "DTV). Paper's choice marked *.\n\n");
    for (const Gen& g : gens) {
      std::vector<core::SystemConfig> cfgs;
      for (const std::uint32_t beats : grans) {
        bench::Row row{traffic::AppId::kSingleDtv, g.gen, g.mhz};
        core::SystemConfig cfg =
            bench::make_config(row, DesignPoint::kGssSagm, true);
        cfg.split_beats = beats;
        cfgs.push_back(cfg);
      }
      const auto metrics = bench::run_batch(cfgs, jobs);
      std::printf("== %s @ %.0f MHz ==\n", to_string(g.gen), g.mhz);
      std::printf("%-12s %14s %16s %18s %14s\n", "split beats",
                  "utilization", "latency all", "latency priority",
                  "wasted beats");
      bench::print_rule(80);
      for (std::size_t i = 0; i < grans.size(); ++i) {
        std::printf("%-2u%-10s %14.3f %13.1f cy %15.1f cy %14llu\n",
                    grans[i], grans[i] == g.paper_choice ? " *" : "",
                    metrics[i].utilization, metrics[i].avg_latency_all(),
                    metrics[i].avg_latency_priority(),
                    static_cast<unsigned long long>(
                        metrics[i].device.wasted_beats()));
      }
      std::printf("\n");
    }
  }

  // --- virtual-channel sweep -------------------------------------------
  {
    const std::vector<std::uint32_t> vcs = {1, 2, 4};
    std::printf("Ablation 3 — virtual channels per input port (GSS, dual "
                "DTV, DDR II @ 400 MHz; 1 = the paper's wormhole)\n\n");
    std::printf("%-6s %14s %18s %22s\n", "VCs", "utilization",
                "latency all (cy)", "latency priority (cy)");
    bench::print_rule(64);
    std::vector<core::SystemConfig> cfgs;
    for (const std::uint32_t v : vcs) {
      bench::Row row{traffic::AppId::kDualDtv, sdram::DdrGeneration::kDdr2,
                     400.0};
      core::SystemConfig cfg =
          bench::make_config(row, DesignPoint::kGss, true);
      cfg.num_vcs = v;
      cfgs.push_back(cfg);
    }
    const auto metrics = bench::run_batch(cfgs, jobs);
    for (std::size_t i = 0; i < vcs.size(); ++i) {
      std::printf("%-6u %14.3f %18.1f %22.1f\n", vcs[i],
                  metrics[i].utilization, metrics[i].avg_latency_all(),
                  metrics[i].avg_latency_priority());
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shapes: priority latency decreases monotonically with\n"
      "PCT at a small utilization/latency-all cost; the paper's split\n"
      "granularity (4 beats on DDR I/II, 8 on DDR III) minimizes wasted\n"
      "beats without starving the burst pipeline; virtual channels add\n"
      "buffering and remove head-of-line blocking, partially overlapping\n"
      "with what SAGM's packet splitting already buys.\n");
  return 0;
}
