/// \file fig8_router_sweep.cpp
/// Reproduces **Fig. 8**: memory performance versus the number of GSS
/// routers. Conventional (priority-first) routers are replaced by GSS
/// routers one at a time, closest to the memory subsystem first; the
/// paper's observation is that the first three routers — the ones
/// adjacent to the memory corner — capture nearly all of the benefit,
/// and further replacements add little.
///
/// Workloads (paper Section V): single DTV (3x3) on DDR I @ 200 MHz,
/// Blu-ray (3x3) on DDR II @ 333 MHz, dual DTV (4x4) on DDR III @
/// 666 MHz.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace annoc;
using core::DesignPoint;

int main(int argc, char** argv) {
  const unsigned jobs = bench::parse_jobs(argc, argv);
  struct Series {
    traffic::AppId app;
    sdram::DdrGeneration gen;
    double mhz;
    std::size_t routers;
  };
  const std::vector<Series> series = {
      {traffic::AppId::kSingleDtv, sdram::DdrGeneration::kDdr1, 200.0, 9},
      {traffic::AppId::kBluray, sdram::DdrGeneration::kDdr2, 333.0, 9},
      {traffic::AppId::kDualDtv, sdram::DdrGeneration::kDdr3, 666.0, 16},
  };

  std::printf("Fig. 8 — performance vs number of GSS routers (replacement\n"
              "order: closest to the memory corner first; %llu measured "
              "cycles per point)\n",
              static_cast<unsigned long long>(bench::sim_cycles()));

  for (const Series& s : series) {
    std::vector<core::SystemConfig> cfgs;
    for (std::size_t n = 0; n <= s.routers; ++n) {
      bench::Row row{s.app, s.gen, s.mhz};
      core::SystemConfig cfg =
          bench::make_config(row, DesignPoint::kGss, /*priority=*/true);
      cfg.num_gss_routers = n;
      cfgs.push_back(cfg);
    }
    const auto metrics = bench::run_batch(cfgs, jobs);

    std::printf("\n== %s, %s @ %.0f MHz ==\n", to_string(s.app),
                to_string(s.gen), s.mhz);
    std::printf("%-12s %14s %18s %22s\n", "#GSS routers", "utilization",
                "latency all (cy)", "latency priority (cy)");
    bench::print_rule(70);
    for (std::size_t n = 0; n <= s.routers; ++n) {
      const core::Metrics& m = metrics[n];
      std::printf("%-12zu %14.3f %18.1f %22.1f\n", n, m.utilization,
                  m.avg_latency_all(), m.avg_latency_priority());
    }
  }

  std::printf(
      "\nShape checks (paper Fig. 8): large gains from the first three\n"
      "replacements (the routers adjacent to the memory corner see almost\n"
      "all memory-bound traffic); four or more GSS routers add little.\n");
  return 0;
}
