/// \file table5_power.cpp
/// Reproduces **Table V**: average power of CONV, [4] and
/// GSS+SAGM+STI on single DTV @ 200 MHz (DDR I), Blu-ray @ 400 MHz
/// (DDR II) and dual DTV @ 800 MHz (DDR III). Activity factors come
/// from the cycle simulation; gate counts from the area model; energy
/// constants calibrated to the paper's PrimeTime PX results.
#include <array>
#include <cstdio>
#include <vector>

#include "analysis/power_model.hpp"
#include "bench_util.hpp"

using namespace annoc;
using core::DesignPoint;

int main(int argc, char** argv) {
  const unsigned jobs = bench::parse_jobs(argc, argv);
  struct Point {
    traffic::AppId app;
    sdram::DdrGeneration gen;
    double mhz;
    std::size_t routers;
    double paper_mw[3];  // CONV, [4], GSS+SAGM+STI
  };
  const std::vector<Point> points = {
      {traffic::AppId::kSingleDtv, sdram::DdrGeneration::kDdr1, 200.0, 9,
       {179.0, 116.0, 115.5}},
      {traffic::AppId::kBluray, sdram::DdrGeneration::kDdr2, 400.0, 9,
       {351.6, 227.8, 226.8}},
      {traffic::AppId::kDualDtv, sdram::DdrGeneration::kDdr3, 800.0, 16,
       {961.9, 726.0, 724.1}},
  };
  constexpr std::array<DesignPoint, 3> kDesigns = {
      DesignPoint::kConv, DesignPoint::kRef4, DesignPoint::kGssSagmSti};
  constexpr const char* kNames[3] = {"CONV", "[4]", "GSS+SAGM+STI"};

  std::vector<core::SystemConfig> cfgs;
  for (const Point& p : points) {
    for (const DesignPoint d : kDesigns) {
      bench::Row row{p.app, p.gen, p.mhz};
      cfgs.push_back(bench::make_config(row, d, /*priority=*/true));
    }
  }
  std::printf("Table V — average power (activity-based model; %llu "
              "measured cycles per point)\n\n",
              static_cast<unsigned long long>(bench::sim_cycles()));
  const auto metrics = bench::run_batch(cfgs, jobs);
  const analysis::PowerModel model;

  std::printf("%-24s |", "application / clock");
  for (const char* n : kNames) std::printf(" %12s  ratio |", n);
  std::printf("\n");
  for (int i = 0; i < 96; ++i) std::fputc('-', stdout);
  std::printf("\n");

  std::array<double, 3> avg{};
  std::array<double, 3> paper_avg{};
  for (std::size_t p = 0; p < points.size(); ++p) {
    char label[64];
    std::snprintf(label, sizeof label, "%s @ %.0f MHz",
                  to_string(points[p].app), points[p].mhz);
    std::array<double, 3> mw{};
    for (std::size_t d = 0; d < kDesigns.size(); ++d) {
      const core::Metrics& m = metrics[p * kDesigns.size() + d];
      mw[d] = model
                  .power(kDesigns[d], points[p].routers, points[p].mhz, m)
                  .total_mw();
      avg[d] += mw[d] / static_cast<double>(points.size());
      paper_avg[d] += points[p].paper_mw[d] / static_cast<double>(points.size());
    }
    std::printf("%-24s |", label);
    for (std::size_t d = 0; d < 3; ++d) {
      std::printf(" %9.1f mW  %5.3f |", mw[d], mw[d] / mw[2]);
    }
    std::printf("\n%-24s |", "  (paper)");
    for (std::size_t d = 0; d < 3; ++d) {
      std::printf(" %9.1f mW  %5.3f |", points[p].paper_mw[d],
                  points[p].paper_mw[d] / points[p].paper_mw[2]);
    }
    std::printf("\n");
  }
  for (int i = 0; i < 96; ++i) std::fputc('-', stdout);
  std::printf("\n%-24s |", "average");
  for (std::size_t d = 0; d < 3; ++d) {
    std::printf(" %9.1f mW  %5.3f |", avg[d], avg[d] / avg[2]);
  }
  std::printf("\n%-24s |", "  (paper)");
  for (std::size_t d = 0; d < 3; ++d) {
    std::printf(" %9.1f mW  %5.3f |", paper_avg[d], paper_avg[d] / paper_avg[2]);
  }
  std::printf(
      "\n\nShape checks (paper): CONV burns ~1.33-1.55x (big always-clocked\n"
      "buffers in its memory subsystem); [4] is within ~0.4%% of the\n"
      "proposed design.\n");
  return 0;
}
