/// \file annoc_sweep.cpp
/// Design-space exploration driver: `annoc_sweep --out DIR sweep.json`
/// expands a sweep spec (docs/EXPERIMENTS.md, scenarios/sweeps/*.json)
/// into its job list and runs it to completion — streaming, checkpointed
/// and shardable. Kill it at any point and rerun the same command: it
/// resumes from the rows already on disk and the merged outputs come
/// out bitwise identical. Point a second process (a different
/// --worker id) at the same directory and the two shard the grid.
///
///   annoc_sweep [options] sweep.json
///     --out=DIR           output directory (required to run)
///     --jobs N, -j N      worker threads (also ANNOC_JOBS; 0 = cores)
///     --worker=ID         shard identity (default w0); reuse to
///                         resume, vary to shard
///     --chunk=N           jobs per work claim (default 16)
///     --max-jobs=N        pause after completing N jobs (resume later)
///     --csv=PATH          also stream rows to a CSV file
///     --list              print "index  point" for every job, run
///                         nothing
///     --validate-only     parse + expand, run nothing (CI uses this)
///     --quiet             suppress per-job progress lines
///
/// Spec errors print a compiler-style `file:line:col: key 'x': message`
/// diagnostic and exit 1.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "explore/executor.hpp"
#include "explore/sweep_spec.hpp"
#include "runner/experiment_runner.hpp"

using namespace annoc;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out=DIR] [--jobs N] [--worker=ID] [--chunk=N] "
               "[--max-jobs=N] [--csv=PATH] [--list] [--validate-only] "
               "[--quiet] sweep.json\n",
               argv0);
  return 2;
}

bool parse_opt(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

std::uint64_t u64_opt(const std::string& v, const char* flag) {
  char* end = nullptr;
  const std::uint64_t u = std::strtoull(v.c_str(), &end, 10);
  if (v.empty() || end != v.c_str() + v.size()) {
    std::fprintf(stderr, "annoc_sweep: malformed %s value '%s'\n", flag,
                 v.c_str());
    std::exit(2);
  }
  return u;
}

const char* mode_name(explore::SweepMode m) {
  return m == explore::SweepMode::kGrid ? "grid" : "random";
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  explore::ExecutorOptions opts;
  opts.jobs = runner::parse_jobs(argc, argv);
  bool list = false;
  bool validate_only = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    std::string v;
    if (parse_opt(a, "--out", &v)) {
      opts.out_dir = v;
    } else if (parse_opt(a, "--worker", &v)) {
      opts.worker_id = v;
    } else if (parse_opt(a, "--chunk", &v)) {
      opts.chunk = u64_opt(v, "--chunk");
    } else if (parse_opt(a, "--max-jobs", &v)) {
      opts.max_jobs = u64_opt(v, "--max-jobs");
    } else if (parse_opt(a, "--csv", &v)) {
      opts.csv_path = v;
    } else if (std::strcmp(a, "--list") == 0) {
      list = true;
    } else if (std::strcmp(a, "--validate-only") == 0) {
      validate_only = true;
    } else if (std::strcmp(a, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(a, "--jobs") == 0 || std::strcmp(a, "-j") == 0) {
      ++i;  // value consumed by runner::parse_jobs
    } else if (std::strncmp(a, "--jobs=", 7) == 0 ||
               std::strncmp(a, "-j", 2) == 0) {
      // consumed by runner::parse_jobs
    } else if (a[0] == '-') {
      std::fprintf(stderr, "annoc_sweep: unknown option '%s'\n", a);
      return usage(argv[0]);
    } else if (spec_path.empty()) {
      spec_path = a;
    } else {
      std::fprintf(stderr, "annoc_sweep: one sweep spec at a time\n");
      return usage(argv[0]);
    }
  }
  if (spec_path.empty()) return usage(argv[0]);

  explore::SweepSpec spec;
  try {
    spec = explore::load_sweep_spec(spec_path);
  } catch (const ParseError& e) {
    std::fprintf(stderr, "%s\n", e.to_string());
    return 1;
  }

  if (validate_only) {
    std::fprintf(stderr, "%s: OK (%s, %s, %llu jobs over %zu axes)\n",
                 spec_path.c_str(),
                 spec.name.empty() ? "unnamed" : spec.name.c_str(),
                 mode_name(spec.mode),
                 static_cast<unsigned long long>(spec.job_count()),
                 spec.axes.size());
    return 0;
  }
  if (list) {
    const std::uint64_t n = spec.job_count();
    for (std::uint64_t j = 0; j < n; ++j) {
      std::printf("%llu\t%s\n", static_cast<unsigned long long>(j),
                  spec.job_point(j).c_str());
    }
    return 0;
  }

  if (opts.out_dir.empty()) {
    std::fprintf(stderr, "annoc_sweep: running a sweep needs --out=DIR\n");
    return usage(argv[0]);
  }
  if (!quiet) {
    opts.on_progress = [](const explore::SweepProgress& p) {
      std::fprintf(stderr, "[%llu/%llu] job %llu (%.2fs)\n",
                   static_cast<unsigned long long>(p.completed_now),
                   static_cast<unsigned long long>(p.total_jobs),
                   static_cast<unsigned long long>(p.job), p.wall_seconds);
    };
  }

  explore::SweepOutcome out;
  try {
    out = explore::run_sweep(spec, opts);
  } catch (const ParseError& e) {
    std::fprintf(stderr, "%s\n", e.to_string());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "annoc_sweep: %s\n", e.what());
    return 1;
  }

  if (out.finished) {
    std::fprintf(stderr,
                 "%s: complete — %llu jobs; wrote merged.jsonl, "
                 "pareto.json, summary.json under %s\n",
                 spec.name.c_str(),
                 static_cast<unsigned long long>(out.total_jobs),
                 opts.out_dir.c_str());
  } else {
    std::fprintf(stderr,
                 "%s: paused — %llu/%llu jobs done (%llu this run); rerun "
                 "with the same --out and --worker to continue\n",
                 spec.name.c_str(),
                 static_cast<unsigned long long>(out.rows_present),
                 static_cast<unsigned long long>(out.total_jobs),
                 static_cast<unsigned long long>(out.completed_now));
  }
  return 0;
}
