/// \file quickstart.cpp
/// Smallest end-to-end use of the library: simulate the single-DTV
/// application on DDR II at 333 MHz for each of the four headline
/// design points and print the paper's three metrics.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
#include <cstdio>

#include "core/simulator.hpp"

int main() {
  using namespace annoc;
  using core::DesignPoint;

  std::printf("Application-aware NoC for efficient SDRAM access — quickstart\n");
  std::printf("Workload: single DTV, DDR II @ 333 MHz, priority enabled\n\n");
  std::printf("%-14s %12s %16s %18s\n", "design", "utilization",
              "latency(all)", "latency(priority)");

  for (DesignPoint d :
       {DesignPoint::kConvPfs, DesignPoint::kRef4Pfs, DesignPoint::kGss,
        DesignPoint::kGssSagm}) {
    core::SystemConfig cfg;
    cfg.design = d;
    cfg.app = traffic::AppId::kSingleDtv;
    cfg.generation = sdram::DdrGeneration::kDdr2;
    cfg.clock_mhz = 333.0;
    cfg.priority_enabled = true;
    cfg.sim_cycles = 100000;

    const core::Metrics m = core::run_simulation(cfg);
    std::printf("%-14s %12.3f %13.1f cy %15.1f cy\n", to_string(d),
                m.utilization, m.avg_latency_all(), m.avg_latency_priority());
  }
  std::printf(
      "\nExpected shape (Table II of the paper): CONV+PFS is clearly the\n"
      "worst on every column; GSS matches or beats [4]+PFS; GSS+SAGM is\n"
      "the best on average across operating points (at a single point it\n"
      "can sit within noise of GSS — run bench/table2_priority for the\n"
      "full nine-point grid).\n");
  return 0;
}
