/// \file quickstart.cpp
/// Smallest end-to-end use of the library: simulate the single-DTV
/// application on DDR II at 333 MHz for each of the four headline
/// design points and print the paper's three metrics. The four runs go
/// through the ExperimentRunner, so `--jobs 4` simulates the design
/// points in parallel with identical results.
///
/// Build & run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart [--jobs N]
#include <cstdio>
#include <vector>

#include "runner/experiment_runner.hpp"

int main(int argc, char** argv) {
  using namespace annoc;
  using core::DesignPoint;

  const unsigned jobs = runner::parse_jobs(argc, argv);
  const std::vector<DesignPoint> designs = {
      DesignPoint::kConvPfs, DesignPoint::kRef4Pfs, DesignPoint::kGss,
      DesignPoint::kGssSagm};

  std::printf("Application-aware NoC for efficient SDRAM access — quickstart\n");
  std::printf("Workload: single DTV, DDR II @ 333 MHz, priority enabled\n\n");
  std::printf("%-14s %12s %16s %18s\n", "design", "utilization",
              "latency(all)", "latency(priority)");

  std::vector<core::SystemConfig> cfgs;
  for (const DesignPoint d : designs) {
    core::SystemConfig cfg;
    cfg.design = d;
    cfg.app = traffic::AppId::kSingleDtv;
    cfg.generation = sdram::DdrGeneration::kDdr2;
    cfg.clock_mhz = 333.0;
    cfg.priority_enabled = true;
    cfg.sim_cycles = 100000;
    cfgs.push_back(cfg);
  }
  runner::ExperimentRunner runner(jobs);
  const auto metrics = runner.run_metrics(cfgs);

  for (std::size_t i = 0; i < designs.size(); ++i) {
    const core::Metrics& m = metrics[i];
    std::printf("%-14s %12.3f %13.1f cy %15.1f cy\n", to_string(designs[i]),
                m.utilization, m.avg_latency_all(), m.avg_latency_priority());
  }
  std::printf(
      "\nExpected shape (Table II of the paper): CONV+PFS is clearly the\n"
      "worst on every column; GSS matches or beats [4]+PFS; GSS+SAGM is\n"
      "the best on average across operating points (at a single point it\n"
      "can sit within noise of GSS — run bench/table2_priority for the\n"
      "full nine-point grid).\n");
  return 0;
}
