/// \file inspect_run.cpp
/// Deep-dive example: run one configuration and dump every statistic the
/// library collects — latency stage breakdown, device activity, command
/// engine behaviour and per-core achieved bandwidth. Useful both as API
/// documentation and for diagnosing a workload.
///
/// Usage: inspect_run [design] [app] [ddr] [mhz] [flags]
///   design: conv | conv+pfs | ref4 | ref4+pfs | gss | gss+sagm | gss+sagm+sti
///   app:    bluray | sdtv | ddtv
///   ddr:    1 | 2 | 3
/// Flags:
///   --observe[=counters|full]   enable the observability layer and print
///                               its digest (stall histograms, per-bank
///                               tallies, GSS ladder occupancy)
///   --trace=PATH                write the per-subpacket CSV trace
///   --trace-perfetto[=PATH]     write a Perfetto/chrome://tracing JSON
///                               timeline (default trace.perfetto.json);
///                               open it at https://ui.perfetto.dev
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/simulator.hpp"
#include "memctrl/streamlined.hpp"
#include "noc/router.hpp"

namespace {

annoc::core::DesignPoint parse_design(const char* s) {
  using annoc::core::DesignPoint;
  if (!std::strcmp(s, "conv")) return DesignPoint::kConv;
  if (!std::strcmp(s, "conv+pfs")) return DesignPoint::kConvPfs;
  if (!std::strcmp(s, "ref4")) return DesignPoint::kRef4;
  if (!std::strcmp(s, "ref4+pfs")) return DesignPoint::kRef4Pfs;
  if (!std::strcmp(s, "gss")) return DesignPoint::kGss;
  if (!std::strcmp(s, "gss+sagm")) return DesignPoint::kGssSagm;
  if (!std::strcmp(s, "gss+sagm+sti")) return DesignPoint::kGssSagmSti;
  std::fprintf(stderr, "unknown design '%s'\n", s);
  std::exit(2);
}

annoc::traffic::AppId parse_app(const char* s) {
  using annoc::traffic::AppId;
  if (!std::strcmp(s, "bluray")) return AppId::kBluray;
  if (!std::strcmp(s, "sdtv")) return AppId::kSingleDtv;
  if (!std::strcmp(s, "ddtv")) return AppId::kDualDtv;
  std::fprintf(stderr, "unknown app '%s'\n", s);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace annoc;
  core::SystemConfig cfg;
  // Positional args first, then --flags in any position after them.
  int npos = 0;
  const char* pos[4] = {nullptr, nullptr, nullptr, nullptr};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) continue;
    if (npos < 4) pos[npos++] = argv[i];
  }
  cfg.design = pos[0] ? parse_design(pos[0]) : core::DesignPoint::kGss;
  cfg.app = pos[1] ? parse_app(pos[1]) : traffic::AppId::kSingleDtv;
  const int ddr = pos[2] ? std::atoi(pos[2]) : 2;
  cfg.generation = ddr == 1   ? sdram::DdrGeneration::kDdr1
                   : ddr == 3 ? sdram::DdrGeneration::kDdr3
                              : sdram::DdrGeneration::kDdr2;
  cfg.clock_mhz = pos[3] ? std::atof(pos[3]) : 333.0;
  cfg.priority_enabled = std::getenv("ANNOC_NO_PRIORITY") == nullptr;
  cfg.sim_cycles = 100000;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (!std::strcmp(a, "--observe") || !std::strcmp(a, "--observe=counters")) {
      cfg.observe = core::ObserveLevel::kCounters;
    } else if (!std::strcmp(a, "--observe=full")) {
      cfg.observe = core::ObserveLevel::kFull;
    } else if (!std::strncmp(a, "--trace=", 8)) {
      cfg.trace_path = a + 8;
    } else if (!std::strcmp(a, "--trace-perfetto")) {
      cfg.perfetto_path = "trace.perfetto.json";
    } else if (!std::strncmp(a, "--trace-perfetto=", 17)) {
      cfg.perfetto_path = a + 17;
    } else if (!std::strncmp(a, "--", 2)) {
      std::fprintf(stderr, "unknown flag '%s'\n", a);
      return 2;
    }
  }

  core::Simulator sim(cfg);
  sim.run();
  const core::Metrics m = sim.metrics();

  std::printf("== %s | %s | %s @ %.0f MHz ==\n", to_string(cfg.design),
              to_string(cfg.app), to_string(cfg.generation), cfg.clock_mhz);
  std::printf("utilization (useful)  %.3f\n", m.utilization);
  std::printf("utilization (raw bus) %.3f\n", m.raw_utilization);
  std::printf("requests completed    %llu (%llu subpackets)\n",
              static_cast<unsigned long long>(m.completed_requests),
              static_cast<unsigned long long>(m.completed_subpackets));
  std::printf("latency all/demand/priority  %.1f / %.1f / %.1f cycles\n",
              m.avg_latency_all(), m.avg_latency_demand(),
              m.avg_latency_priority());
  std::printf("stage breakdown (per subpacket): source %.1f | network %.1f "
              "| memory %.1f\n",
              m.source_queue.mean(), m.network.mean(), m.memory.mean());
  std::printf("priority stages:                 source %.1f | network %.1f "
              "| memory %.1f\n",
              m.source_queue_prio.mean(), m.network_prio.mean(),
              m.memory_prio.mean());

  std::printf("\n-- SDRAM device --\n");
  std::printf("ACT %llu  PRE %llu  AP %llu  RD %llu  WR %llu  rowhit-CAS %llu\n",
              static_cast<unsigned long long>(m.device.activates),
              static_cast<unsigned long long>(m.device.precharges),
              static_cast<unsigned long long>(m.device.auto_precharges),
              static_cast<unsigned long long>(m.device.reads),
              static_cast<unsigned long long>(m.device.writes),
              static_cast<unsigned long long>(m.device.cas_row_hits));
  std::printf("beats total %llu useful %llu wasted %llu; bus turnarounds %llu\n",
              static_cast<unsigned long long>(m.device.total_beats),
              static_cast<unsigned long long>(m.device.useful_beats),
              static_cast<unsigned long long>(m.device.wasted_beats()),
              static_cast<unsigned long long>(
                  m.device.bus_direction_turnarounds));

  std::printf("\n-- command engine --\n");
  std::printf("cas %llu act %llu pre %llu prep-act %llu stall cycles %llu\n",
              static_cast<unsigned long long>(m.engine.cas_issued),
              static_cast<unsigned long long>(m.engine.act_issued),
              static_cast<unsigned long long>(m.engine.pre_issued),
              static_cast<unsigned long long>(m.engine.prep_acts),
              static_cast<unsigned long long>(m.engine.stall_cycles));
  std::printf("stall causes: need-act %llu need-pre %llu cas-timing %llu\n",
              static_cast<unsigned long long>(m.engine.stall_need_act),
              static_cast<unsigned long long>(m.engine.stall_need_pre),
              static_cast<unsigned long long>(m.engine.stall_cas_timing));

  if (const auto* str = dynamic_cast<const memctrl::StreamlinedSubsystem*>(
          &sim.subsystem())) {
    std::printf("subsystem starved (engine+input empty): %llu cycles\n",
                static_cast<unsigned long long>(str->starved_cycles()));
  }
  std::printf("\n-- NoC --\n");
  std::printf("packets forwarded %llu, flits forwarded %llu\n",
              static_cast<unsigned long long>(m.noc_packets_forwarded),
              static_cast<unsigned long long>(m.noc_flits_forwarded));

  std::printf("\n-- router output-channel occupancy (fraction of cycles) --\n");
  const auto total_cy = static_cast<double>(sim.now());
  for (std::size_t r = 0; r < sim.network().num_routers(); ++r) {
    const auto& st = sim.network().router(static_cast<annoc::NodeId>(r)).stats();
    std::printf("router %zu:", r);
    for (int p = 0; p < noc::kNumPorts; ++p) {
      if (st.output_busy[p] == 0) continue;
      std::printf("  %s %.2f", to_string(static_cast<noc::Port>(p)),
                  static_cast<double>(st.output_busy[p]) / total_cy);
    }
    std::printf("\n");
  }

  std::printf("\n-- per core --\n");
  std::printf("%-14s %10s %12s %10s\n", "core", "requests", "avg-lat",
              "B/cycle");
  for (const auto& [name, cm] : m.per_core) {
    std::printf("%-14s %10llu %9.1f cy %10.3f\n", name.c_str(),
                static_cast<unsigned long long>(cm.requests), cm.avg_latency,
                cm.achieved_bytes_per_cycle);
  }

  if (m.obs_valid) {
    const auto u = [](std::uint64_t v) {
      return static_cast<unsigned long long>(v);
    };
    std::printf("\n-- observability digest (whole run) --\n");
    std::printf("row-hit CAS %llu | conflict PRE %llu | AP-elided PRE %llu | "
                "refreshes %llu\n",
                u(m.obs.row_hits_total()), u(m.obs.conflict_pre_total()),
                u(m.obs.ap_elided_total()), u(m.obs.refreshes));
    std::printf("worst wait: any %llu cy, priority %llu cy\n",
                u(m.obs.worst_wait), u(m.obs.worst_priority_wait));

    std::printf("\nper-router stall causes (grants | gss-excl / "
                "downstream-full / sink-busy):\n");
    for (std::size_t r = 0; r < m.obs.routers.size(); ++r) {
      const auto& rt = m.obs.routers[r];
      if (rt.grants == 0 && rt.total_stalls() == 0) continue;
      std::printf("  router %zu: %llu | %llu / %llu / %llu\n", r, u(rt.grants),
                  u(rt.stalls[static_cast<std::size_t>(
                      obs::StallCause::kGssExclusion)]),
                  u(rt.stalls[static_cast<std::size_t>(
                      obs::StallCause::kDownstreamFull)]),
                  u(rt.stalls[static_cast<std::size_t>(
                      obs::StallCause::kSinkBusy)]));
    }

    std::printf("\nper-bank (ACT | row-hit CAS | conflict-PRE | AP-elided | "
                "open cycles):\n");
    for (std::size_t b = 0; b < m.obs.banks.size(); ++b) {
      const auto& bk = m.obs.banks[b];
      if (bk.activates == 0) continue;
      std::printf("  bank %zu: %llu | %llu | %llu | %llu | %llu\n", b,
                  u(bk.activates), u(bk.row_hit_cas), u(bk.conflict_pre),
                  u(bk.ap_elided_pre), u(bk.open_cycles));
    }

    if (m.obs.gss.total_admits() > 0) {
      std::printf("\nGSS filter-ladder occupancy (admits per level):\n ");
      for (std::size_t l = 0; l < m.obs.gss.admits_by_level.size(); ++l) {
        if (m.obs.gss.admits_by_level[l] == 0) continue;
        std::printf(" L%zu=%llu", l, u(m.obs.gss.admits_by_level[l]));
      }
      std::printf("\n  row-hit admits %llu | priority admits %llu | "
                  "retry rounds %llu | STI hits %llu\n",
                  u(m.obs.gss.rowhit_admits), u(m.obs.gss.priority_admits),
                  u(m.obs.gss.retry_rounds), u(m.obs.gss.sti_hits));
    }
  }
  if (!cfg.perfetto_path.empty()) {
    std::printf("\nPerfetto timeline written to %s — open it at "
                "https://ui.perfetto.dev\n",
                cfg.perfetto_path.c_str());
  }
  if (m.trace_dropped_rows > 0) {
    std::fprintf(stderr, "warning: %llu trace rows dropped (unwritable %s)\n",
                 static_cast<unsigned long long>(m.trace_dropped_rows),
                 cfg.trace_path.c_str());
  }
  return 0;
}
