/// \file latency_budget.cpp
/// Capacity planning with the library: given a priority-latency budget
/// for the MPU's demand misses (a real-time deadline), find — by
/// bisection on a workload scale factor — how much stream bandwidth
/// each design point can carry while staying inside the budget.
///
/// This is the question the paper's QoS machinery exists to answer:
/// GSS-class designs should sustain more background traffic at the same
/// demand-latency budget than a priority-first retrofit.
#include <cstdio>
#include <vector>

#include "core/simulator.hpp"

using namespace annoc;

namespace {

/// Build the single-DTV application with every stream core's rate
/// scaled by `factor` (the MPU stays fixed — it is the latency victim,
/// not the load).
traffic::Application scaled_app(double factor) {
  traffic::Application app =
      traffic::build_application(traffic::AppId::kSingleDtv);
  for (auto& core : app.cores) {
    if (!core.spec.is_mpu) core.spec.bytes_per_cycle *= factor;
  }
  return app;
}

double priority_latency_at(core::DesignPoint design, double factor) {
  core::SystemConfig cfg;
  cfg.design = design;
  cfg.custom_app = scaled_app(factor);
  cfg.generation = sdram::DdrGeneration::kDdr2;
  cfg.clock_mhz = 333.0;
  cfg.priority_enabled = true;
  cfg.sim_cycles = 40000;
  cfg.warmup_cycles = 8000;
  const core::Metrics m = core::run_simulation(cfg);
  return m.avg_latency_priority();
}

/// Largest stream-scale factor whose priority latency fits the budget.
double max_scale_within(core::DesignPoint design, double budget_cycles) {
  double lo = 0.2, hi = 2.0;
  if (priority_latency_at(design, hi) <= budget_cycles) return hi;
  if (priority_latency_at(design, lo) > budget_cycles) return 0.0;
  for (int iter = 0; iter < 7; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (priority_latency_at(design, mid) <= budget_cycles) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

int main() {
  const double budget = 130.0;  // demand misses must average <= 130 cycles
  std::printf("Capacity planning: max stream load meeting a %.0f-cycle\n"
              "priority-latency budget (single DTV, DDR II @ 333 MHz;\n"
              "stream rates scaled around the paper's operating point).\n\n",
              budget);
  std::printf("%-14s %22s %26s\n", "design", "max stream scale",
              "stream bandwidth (B/cycle)");
  for (int i = 0; i < 66; ++i) std::fputc('-', stdout);
  std::printf("\n");

  const traffic::Application base = scaled_app(1.0);
  double stream_base = 0.0;
  for (const auto& c : base.cores) {
    if (!c.spec.is_mpu) stream_base += c.spec.bytes_per_cycle;
  }

  for (core::DesignPoint d :
       {core::DesignPoint::kConvPfs, core::DesignPoint::kRef4Pfs,
        core::DesignPoint::kGss, core::DesignPoint::kGssSagm}) {
    const double scale = max_scale_within(d, budget);
    std::printf("%-14s %22.2f %26.2f\n", to_string(d), scale,
                scale * stream_base);
  }
  std::printf(
      "\nReading the result: a design that schedules priority packets\n"
      "without wrecking SDRAM efficiency sustains more background load\n"
      "inside the same deadline — the paper's pitch for GSS(+SAGM) over\n"
      "a priority-first retrofit.\n");
  return 0;
}
