/// \file latency_budget.cpp
/// Capacity planning with the library: given a priority-latency budget
/// for the MPU's demand misses (a real-time deadline), find — by
/// bisection on a workload scale factor — how much stream bandwidth
/// each design point can carry while staying inside the budget.
///
/// This is the question the paper's QoS machinery exists to answer:
/// GSS-class designs should sustain more background traffic at the same
/// demand-latency budget than a priority-first retrofit.
///
/// The four designs bisect in lockstep: every iteration batches one
/// probe per still-searching design through the ExperimentRunner, so
/// `--jobs 4` runs the designs' probes in parallel while producing the
/// exact numbers the one-design-at-a-time loop would.
#include <cstdio>
#include <vector>

#include "runner/experiment_runner.hpp"

using namespace annoc;

namespace {

/// Build the single-DTV application with every stream core's rate
/// scaled by `factor` (the MPU stays fixed — it is the latency victim,
/// not the load).
traffic::Application scaled_app(double factor) {
  traffic::Application app =
      traffic::build_application(traffic::AppId::kSingleDtv);
  for (auto& core : app.cores) {
    if (!core.spec.is_mpu) core.spec.bytes_per_cycle *= factor;
  }
  return app;
}

core::SystemConfig probe_config(core::DesignPoint design, double factor) {
  core::SystemConfig cfg;
  cfg.design = design;
  cfg.custom_app = scaled_app(factor);
  cfg.generation = sdram::DdrGeneration::kDdr2;
  cfg.clock_mhz = 333.0;
  cfg.priority_enabled = true;
  cfg.sim_cycles = 40000;
  cfg.warmup_cycles = 8000;
  return cfg;
}

/// One design's bisection bracket. `done` designs keep their result;
/// the rest still have probes to run.
struct Search {
  core::DesignPoint design;
  double lo = 0.2, hi = 2.0;
  bool done = false;
  double result = 0.0;
};

/// Probe `factor(s)` for every unfinished search in one parallel batch
/// and hand each search its measured priority latency.
template <typename FactorFn, typename ApplyFn>
void probe_round(std::vector<Search>& searches,
                 runner::ExperimentRunner& runner, FactorFn factor,
                 ApplyFn apply) {
  std::vector<core::SystemConfig> cfgs;
  std::vector<std::size_t> who;
  for (std::size_t i = 0; i < searches.size(); ++i) {
    if (searches[i].done) continue;
    cfgs.push_back(probe_config(searches[i].design, factor(searches[i])));
    who.push_back(i);
  }
  const auto metrics = runner.run_metrics(cfgs);
  for (std::size_t k = 0; k < who.size(); ++k) {
    apply(searches[who[k]], metrics[k].avg_latency_priority());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = runner::parse_jobs(argc, argv);
  runner::ExperimentRunner runner(jobs);

  const double budget = 130.0;  // demand misses must average <= 130 cycles
  std::printf("Capacity planning: max stream load meeting a %.0f-cycle\n"
              "priority-latency budget (single DTV, DDR II @ 333 MHz;\n"
              "stream rates scaled around the paper's operating point).\n\n",
              budget);
  std::printf("%-14s %22s %26s\n", "design", "max stream scale",
              "stream bandwidth (B/cycle)");
  for (int i = 0; i < 66; ++i) std::fputc('-', stdout);
  std::printf("\n");

  const traffic::Application base = scaled_app(1.0);
  double stream_base = 0.0;
  for (const auto& c : base.cores) {
    if (!c.spec.is_mpu) stream_base += c.spec.bytes_per_cycle;
  }

  std::vector<Search> searches = {{core::DesignPoint::kConvPfs},
                                  {core::DesignPoint::kRef4Pfs},
                                  {core::DesignPoint::kGss},
                                  {core::DesignPoint::kGssSagm}};

  // Bracket: a design whose top-of-range load already fits is done;
  // one whose bottom-of-range load misses the budget carries nothing.
  probe_round(
      searches, runner, [](const Search& s) { return s.hi; },
      [&](Search& s, double lat) {
        if (lat <= budget) {
          s.done = true;
          s.result = s.hi;
        }
      });
  probe_round(
      searches, runner, [](const Search& s) { return s.lo; },
      [&](Search& s, double lat) {
        if (lat > budget) {
          s.done = true;
          s.result = 0.0;
        }
      });

  for (int iter = 0; iter < 7; ++iter) {
    probe_round(
        searches, runner,
        [](const Search& s) { return 0.5 * (s.lo + s.hi); },
        [&](Search& s, double lat) {
          const double mid = 0.5 * (s.lo + s.hi);
          if (lat <= budget) {
            s.lo = mid;
          } else {
            s.hi = mid;
          }
        });
  }
  for (Search& s : searches) {
    if (!s.done) s.result = s.lo;
  }

  for (const Search& s : searches) {
    std::printf("%-14s %22.2f %26.2f\n", to_string(s.design), s.result,
                s.result * stream_base);
  }
  std::printf(
      "\nReading the result: a design that schedules priority packets\n"
      "without wrecking SDRAM efficiency sustains more background load\n"
      "inside the same deadline — the paper's pitch for GSS(+SAGM) over\n"
      "a priority-first retrofit.\n");
  return 0;
}
