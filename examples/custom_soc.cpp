/// \file custom_soc.cpp
/// Using the library on YOUR SoC: define a custom set of cores (an
/// automotive surround-view system: four camera ISPs writing, a neural
/// detector reading small scattered tiles, a GPU compositor, a display
/// and a safety MCU whose demand reads are priority), map it to a 3x3
/// mesh, and compare the four headline design points on it.
///
/// Demonstrates the public extension API: traffic::CoreSpec /
/// traffic::Application + core::SystemConfig::custom_app.
#include <cstdio>
#include <vector>

#include "runner/experiment_runner.hpp"

using namespace annoc;

namespace {

traffic::Application build_surround_view() {
  traffic::Application app;
  app.name = "surround-view";
  app.noc.width = 3;
  app.noc.height = 3;
  app.noc.mem_node = 0;

  auto add = [&](traffic::CoreSpec spec, NodeId node) {
    app.cores.push_back({std::move(spec), node});
  };

  // Safety MCU: latency-critical demand reads — next to the memory.
  traffic::CoreSpec mcu;
  mcu.name = "safety-mcu";
  mcu.is_mpu = true;
  mcu.demand_fraction = 0.7;
  mcu.demand_bytes = 32;
  mcu.sizes = {{64, 1.0}};
  mcu.read_fraction = 0.8;
  mcu.bytes_per_cycle = 0.4;
  mcu.max_outstanding = 2;
  mcu.region_base = 0;
  add(mcu, 1);

  // Four camera ISPs: sequential 256-byte line writes.
  for (int i = 0; i < 4; ++i) {
    traffic::CoreSpec isp;
    isp.name = "cam-isp" + std::to_string(i);
    isp.sizes = {{256, 1.0}};
    isp.read_fraction = 0.1;  // mostly writing captured lines
    isp.bytes_per_cycle = 0.9;
    isp.sequential_fraction = 0.97;
    isp.max_outstanding = 4;
    isp.region_base = (1 + static_cast<std::uint64_t>(i)) * (4u << 20);
    add(isp, static_cast<NodeId>(2 + i));
  }

  // Neural detector: scattered small tile reads (granularity-hostile).
  traffic::CoreSpec nn;
  nn.name = "nn-detector";
  nn.sizes = {{8, 0.4}, {16, 0.4}, {32, 0.2}};
  nn.read_fraction = 0.9;
  nn.bytes_per_cycle = 1.2;
  nn.sequential_fraction = 0.2;
  nn.max_outstanding = 24;
  nn.region_base = 5ull * (4u << 20);
  add(nn, 0);

  // GPU compositor: mixed 128-byte reads/writes.
  traffic::CoreSpec gpu;
  gpu.name = "gpu-comp";
  gpu.sizes = {{128, 1.0}};
  gpu.read_fraction = 0.6;
  gpu.bytes_per_cycle = 1.4;
  gpu.sequential_fraction = 0.9;
  gpu.max_outstanding = 6;
  gpu.region_base = 6ull * (4u << 20);
  add(gpu, 6);

  // Display controller: pure sequential reads.
  traffic::CoreSpec disp;
  disp.name = "display";
  disp.sizes = {{256, 1.0}};
  disp.read_fraction = 1.0;
  disp.bytes_per_cycle = 1.1;
  disp.sequential_fraction = 0.99;
  disp.max_outstanding = 4;
  disp.region_base = 7ull * (4u << 20);
  add(disp, 7);

  // Telemetry/logging DMA.
  traffic::CoreSpec dma;
  dma.name = "log-dma";
  dma.sizes = {{64, 1.0}};
  dma.read_fraction = 0.3;
  dma.bytes_per_cycle = 0.3;
  dma.sequential_fraction = 0.8;
  dma.max_outstanding = 8;
  dma.region_base = 8ull * (4u << 20);
  add(dma, 8);

  // Placement summary: nn-detector shares the memory corner router (0),
  // the safety MCU sits one hop out (1), the ISPs line the first rows
  // (2-5), and the rest fill the far side (6-8).
  return app;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = runner::parse_jobs(argc, argv);
  const traffic::Application app = build_surround_view();
  std::printf("Custom SoC '%s': %zu cores, offered %.2f B/cycle\n\n",
              app.name.c_str(), app.cores.size(),
              app.offered_bytes_per_cycle());
  std::printf("%-14s %12s %16s %18s %16s\n", "design", "utilization",
              "latency(all)", "latency(priority)", "wasted beats");

  const std::vector<core::DesignPoint> designs = {
      core::DesignPoint::kConvPfs, core::DesignPoint::kRef4Pfs,
      core::DesignPoint::kGss, core::DesignPoint::kGssSagm};
  std::vector<core::SystemConfig> cfgs;
  for (const core::DesignPoint d : designs) {
    core::SystemConfig cfg;
    cfg.design = d;
    cfg.custom_app = app;
    cfg.generation = sdram::DdrGeneration::kDdr1;
    cfg.clock_mhz = 200.0;
    cfg.priority_enabled = true;
    cfg.sim_cycles = 60000;
    cfg.warmup_cycles = 10000;
    cfgs.push_back(std::move(cfg));
  }
  runner::ExperimentRunner runner(jobs);
  const auto metrics = runner.run_metrics(cfgs);
  for (std::size_t i = 0; i < designs.size(); ++i) {
    const core::Metrics& m = metrics[i];
    std::printf("%-14s %12.3f %13.1f cy %15.1f cy %15llu\n",
                to_string(designs[i]), m.utilization, m.avg_latency_all(),
                m.avg_latency_priority(),
                static_cast<unsigned long long>(m.device.wasted_beats()));
  }
  std::printf(
      "\nThe detector's 8-32 byte tiles make this workload granularity-\n"
      "hostile: watch the wasted-beats column collapse under GSS+SAGM\n"
      "while the safety MCU's priority latency stays low.\n");
  return 0;
}
