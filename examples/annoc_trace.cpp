/// \file annoc_trace.cpp
/// Forensic trace CLI: runs one configuration with the observability layer
/// enabled and prints a ranked digest of where cycles go — top stall causes
/// across the mesh, the worst-case wait a priority packet suffered, and the
/// banks losing the most time to row conflicts.
///
/// Usage: annoc_trace [design] [app] [ddr] [mhz]
///   design: conv | conv+pfs | ref4 | ref4+pfs | gss | gss+sagm | gss+sagm+sti
///           (default: conv — the interesting forensic case)
///   app:    bluray | sdtv | ddtv
///   ddr:    1 | 2 | 3
///
/// For a full timeline instead of a digest, use
///   inspect_run <design> <app> --trace-perfetto
/// and open the JSON at https://ui.perfetto.dev.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/simulator.hpp"

namespace {

annoc::core::DesignPoint parse_design(const char* s) {
  using annoc::core::DesignPoint;
  if (!std::strcmp(s, "conv")) return DesignPoint::kConv;
  if (!std::strcmp(s, "conv+pfs")) return DesignPoint::kConvPfs;
  if (!std::strcmp(s, "ref4")) return DesignPoint::kRef4;
  if (!std::strcmp(s, "ref4+pfs")) return DesignPoint::kRef4Pfs;
  if (!std::strcmp(s, "gss")) return DesignPoint::kGss;
  if (!std::strcmp(s, "gss+sagm")) return DesignPoint::kGssSagm;
  if (!std::strcmp(s, "gss+sagm+sti")) return DesignPoint::kGssSagmSti;
  std::fprintf(stderr, "unknown design '%s'\n", s);
  std::exit(2);
}

annoc::traffic::AppId parse_app(const char* s) {
  using annoc::traffic::AppId;
  if (!std::strcmp(s, "bluray")) return AppId::kBluray;
  if (!std::strcmp(s, "sdtv")) return AppId::kSingleDtv;
  if (!std::strcmp(s, "ddtv")) return AppId::kDualDtv;
  std::fprintf(stderr, "unknown app '%s'\n", s);
  std::exit(2);
}

unsigned long long ull(std::uint64_t v) {
  return static_cast<unsigned long long>(v);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace annoc;
  core::SystemConfig cfg;
  cfg.design = argc > 1 ? parse_design(argv[1]) : core::DesignPoint::kConv;
  cfg.app = argc > 2 ? parse_app(argv[2]) : traffic::AppId::kBluray;
  const int ddr = argc > 3 ? std::atoi(argv[3]) : 2;
  cfg.generation = ddr == 1   ? sdram::DdrGeneration::kDdr1
                   : ddr == 3 ? sdram::DdrGeneration::kDdr3
                              : sdram::DdrGeneration::kDdr2;
  cfg.clock_mhz = argc > 4 ? std::atof(argv[4]) : 266.0;
  cfg.sim_cycles = 100000;
  cfg.priority_enabled = true;  // the worst-priority-wait headline needs them
  cfg.observe = core::ObserveLevel::kCounters;

  core::Simulator sim(cfg);
  sim.run();
  const core::Metrics m = sim.metrics();
  if (!m.obs_valid) {
    std::fprintf(stderr, "observability counters unavailable "
                         "(built with ANNOC_DISABLE_OBSERVABILITY?)\n");
    return 1;
  }

  std::printf("== forensics: %s | %s | %s @ %.0f MHz ==\n",
              to_string(cfg.design), to_string(cfg.app),
              to_string(cfg.generation), cfg.clock_mhz);
  std::printf("utilization %.3f, avg latency %.1f cy (priority %.1f cy)\n",
              m.utilization, m.avg_latency_all(), m.avg_latency_priority());

  // --- 1. Top stall causes, ranked across the whole mesh. ---------------
  std::uint64_t by_cause[obs::kNumStallCauses] = {};
  for (const auto& rt : m.obs.routers) {
    for (std::size_t c = 0; c < obs::kNumStallCauses; ++c) {
      by_cause[c] += rt.stalls[c];
    }
  }
  struct CauseRow { obs::StallCause cause; std::uint64_t count; };
  std::vector<CauseRow> causes;
  for (std::size_t c = 0; c < obs::kNumStallCauses; ++c) {
    causes.push_back({static_cast<obs::StallCause>(c), by_cause[c]});
  }
  std::sort(causes.begin(), causes.end(),
            [](const CauseRow& a, const CauseRow& b) {
              return a.count > b.count;
            });
  const std::uint64_t total_stalls = m.obs.router_stalls_total();
  std::printf("\n-- top stall causes (%llu stalled grant slots total) --\n",
              ull(total_stalls));
  for (const auto& cr : causes) {
    if (cr.count == 0) continue;
    std::printf("  %-16s %10llu  (%.1f%%)\n", to_string(cr.cause),
                ull(cr.count),
                total_stalls ? 100.0 * static_cast<double>(cr.count) /
                                   static_cast<double>(total_stalls)
                             : 0.0);
    // Which routers contribute most to this cause?
    struct RouterRow { std::size_t router; std::uint64_t count; };
    std::vector<RouterRow> rr;
    for (std::size_t r = 0; r < m.obs.routers.size(); ++r) {
      const auto n = m.obs.routers[r].stalls[static_cast<std::size_t>(cr.cause)];
      if (n > 0) rr.push_back({r, n});
    }
    std::sort(rr.begin(), rr.end(), [](const RouterRow& a, const RouterRow& b) {
      return a.count > b.count;
    });
    for (std::size_t i = 0; i < rr.size() && i < 3; ++i) {
      std::printf("      router %-2zu %10llu\n", rr[i].router, ull(rr[i].count));
    }
  }
  if (total_stalls == 0) std::printf("  (no router ever stalled)\n");

  // --- 2. Worst-case waits. ---------------------------------------------
  std::printf("\n-- worst-case waits (created -> done) --\n");
  std::printf("  any subpacket       %10llu cycles\n", ull(m.obs.worst_wait));
  std::printf("  priority subpacket  %10llu cycles\n",
              ull(m.obs.worst_priority_wait));

  // --- 3. Bank-conflict offenders. --------------------------------------
  struct BankRow { std::size_t bank; const obs::BankCounters* c; };
  std::vector<BankRow> banks;
  for (std::size_t b = 0; b < m.obs.banks.size(); ++b) {
    if (m.obs.banks[b].activates > 0) banks.push_back({b, &m.obs.banks[b]});
  }
  std::sort(banks.begin(), banks.end(), [](const BankRow& a, const BankRow& b) {
    return a.c->conflict_pre > b.c->conflict_pre;
  });
  std::printf("\n-- bank-conflict offenders (conflict PRE, worst first) --\n");
  std::printf("  %-6s %12s %10s %12s %12s\n", "bank", "conflict-PRE",
              "ACT", "row-hit-CAS", "AP-elided");
  for (const auto& br : banks) {
    std::printf("  %-6zu %12llu %10llu %12llu %12llu\n", br.bank,
                ull(br.c->conflict_pre), ull(br.c->activates),
                ull(br.c->row_hit_cas), ull(br.c->ap_elided_pre));
  }
  std::printf("\ntotals: conflict PRE %llu, row-hit CAS %llu, AP-elided PRE "
              "%llu, STI hits %llu\n",
              ull(m.obs.conflict_pre_total()), ull(m.obs.row_hits_total()),
              ull(m.obs.ap_elided_total()), ull(m.obs.gss.sti_hits));
  return 0;
}
