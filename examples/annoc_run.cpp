/// \file annoc_run.cpp
/// Run a declarative workload: `annoc_run scenario.json` loads a
/// scenario file (docs/WORKLOADS.md, scenarios/*.json), simulates it
/// and prints the paper's headline metrics. Several scenarios run as
/// one ExperimentRunner batch, so `--jobs N` parallelizes them with
/// bit-identical results.
///
///   annoc_run [options] scenario.json [more.json ...]
///     --jobs N, -j N      worker threads (also ANNOC_JOBS; 0 = cores)
///     --validate-only     load + validate, run nothing (CI uses this)
///     --print             dump the canonical form of each scenario
///     --observe[=LEVEL]   override observe: counters (default) or full
///     --seed=N            override the scenario seed
///     --record-trace=P    record the run's requests as a replayable
///                         trace (one scenario only; see WORKLOADS.md)
///     --json-out[=PATH]   metrics as JSON (default stdout; "-" stdout)
///     --csv-out=PATH      metrics as CSV
///
/// Scenario parse errors print a compiler-style `file:line:col: key
/// 'x': message` diagnostic and exit 1.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "runner/experiment_runner.hpp"
#include "runner/metrics_export.hpp"
#include "scenario/scenario.hpp"

using namespace annoc;

namespace {

struct Options {
  std::vector<std::string> files;
  bool validate_only = false;
  bool print = false;
  bool have_observe = false;
  core::ObserveLevel observe = core::ObserveLevel::kCounters;
  bool have_seed = false;
  std::uint64_t seed = 0;
  std::string record_trace;
  std::string json_out;  ///< "-" = stdout
  std::string csv_out;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--jobs N] [--validate-only] [--print] "
               "[--observe[=counters|full]] [--seed=N] [--record-trace=P] "
               "[--json-out[=PATH]] [--csv-out=PATH] scenario.json ...\n",
               argv0);
  return 2;
}

bool parse_opt(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return false;
  if (arg[n] == '\0') {
    *out = "-";
    return true;
  }
  if (arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

/// The label set metrics_export wants, derived from a loaded scenario.
runner::LabeledRun label_run(const scenario::Scenario& s,
                             const std::string& file) {
  runner::LabeledRun run;
  run.table = s.name.empty() ? file : s.name;
  run.application = s.config.custom_app ? s.config.custom_app->name
                                        : to_string(s.config.app);
  run.ddr = to_string(s.config.generation);
  run.clock_mhz = s.config.clock_mhz;
  run.design = to_string(s.config.design);
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  const unsigned jobs = runner::parse_jobs(argc, argv);
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    std::string v;
    if (std::strcmp(a, "--validate-only") == 0) {
      opt.validate_only = true;
    } else if (std::strcmp(a, "--print") == 0) {
      opt.print = true;
    } else if (parse_opt(a, "--observe", &v)) {
      opt.have_observe = true;
      if (v == "-" || v == "counters") {
        opt.observe = core::ObserveLevel::kCounters;
      } else if (v == "full") {
        opt.observe = core::ObserveLevel::kFull;
      } else {
        std::fprintf(stderr, "annoc_run: unknown observe level '%s'\n",
                     v.c_str());
        return usage(argv[0]);
      }
    } else if (parse_opt(a, "--seed", &v)) {
      char* end = nullptr;
      opt.seed = std::strtoull(v.c_str(), &end, 0);
      if (v == "-" || end == v.c_str() || *end != '\0') {
        std::fprintf(stderr, "annoc_run: malformed --seed value\n");
        return usage(argv[0]);
      }
      opt.have_seed = true;
    } else if (parse_opt(a, "--record-trace", &v)) {
      opt.record_trace = v;
    } else if (parse_opt(a, "--json-out", &v)) {
      opt.json_out = v;
    } else if (parse_opt(a, "--csv-out", &v)) {
      opt.csv_out = v;
    } else if (std::strcmp(a, "--jobs") == 0 || std::strcmp(a, "-j") == 0) {
      ++i;  // value consumed by runner::parse_jobs
    } else if (std::strncmp(a, "--jobs=", 7) == 0 ||
               std::strncmp(a, "-j", 2) == 0) {
      // consumed by runner::parse_jobs
    } else if (a[0] == '-') {
      std::fprintf(stderr, "annoc_run: unknown option '%s'\n", a);
      return usage(argv[0]);
    } else {
      opt.files.push_back(a);
    }
  }
  if (opt.files.empty()) return usage(argv[0]);
  if (!opt.record_trace.empty() && opt.files.size() != 1) {
    std::fprintf(stderr,
                 "annoc_run: --record-trace wants exactly one scenario\n");
    return 2;
  }

  std::vector<scenario::Scenario> scenarios;
  std::map<std::string, scenario::Scenario> parsed;  // parse each file once
  try {
    for (const std::string& f : opt.files) {
      auto it = parsed.find(f);
      if (it == parsed.end()) {
        it = parsed.emplace(f, scenario::load_scenario(f)).first;
      }
      scenario::Scenario s = it->second;
      if (opt.have_observe) s.config.observe = opt.observe;
      if (opt.have_seed) s.config.seed = opt.seed;
      if (!opt.record_trace.empty()) {
        s.config.record_trace_path = opt.record_trace;
      }
      scenarios.push_back(std::move(s));
    }
  } catch (const ParseError& e) {
    std::fprintf(stderr, "%s\n", e.to_string());
    return 1;
  }

  if (opt.print) {
    for (const scenario::Scenario& s : scenarios) {
      std::fputs(scenario::dump_scenario(s).c_str(), stdout);
    }
    return 0;
  }
  if (opt.validate_only) {
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      std::fprintf(stderr, "%s: OK (%s)\n", opt.files[i].c_str(),
                   scenarios[i].name.empty() ? "unnamed"
                                             : scenarios[i].name.c_str());
    }
    return 0;
  }

  std::vector<core::SystemConfig> cfgs;
  cfgs.reserve(scenarios.size());
  for (const scenario::Scenario& s : scenarios) cfgs.push_back(s.config);

  runner::ExperimentRunner pool(jobs);
  std::vector<runner::RunResult> results;
  try {
    results = pool.run(cfgs);
  } catch (const ParseError& e) {  // replay_trace loads inside the run
    std::fprintf(stderr, "%s\n", e.to_string());
    return 1;
  }

  std::printf("%-24s %-12s %12s %16s %18s\n", "scenario", "design",
              "utilization", "latency(all)", "latency(priority)");
  std::vector<runner::LabeledRun> labeled;
  for (std::size_t i = 0; i < results.size(); ++i) {
    runner::LabeledRun run = label_run(scenarios[i], opt.files[i]);
    run.metrics = results[i].metrics;
    run.wall_seconds = results[i].wall_seconds;
    const core::Metrics& m = run.metrics;
    std::printf("%-24s %-12s %12.3f %13.1f cy %15.1f cy\n",
                run.table.c_str(), run.design.c_str(), m.utilization,
                m.avg_latency_all(), m.avg_latency_priority());
    labeled.push_back(std::move(run));
  }

  const auto write_to = [&](const std::string& path, auto writer,
                            const char* what) {
    if (path.empty()) return true;
    std::FILE* out = path == "-" ? stdout : std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "annoc_run: cannot write %s '%s'\n", what,
                   path.c_str());
      return false;
    }
    writer(out, labeled);
    if (out != stdout) std::fclose(out);
    return true;
  };
  bool ok = write_to(opt.json_out, runner::write_json, "JSON");
  ok = write_to(opt.csv_out, runner::write_csv, "CSV") && ok;
  return ok ? 0 : 1;
}
