/// \file scheduling_trace.cpp
/// Didactic reproduction of the paper's Fig. 1: six memory requests —
/// two MPU demands (priority), two prefetches and two video requests —
/// scheduled by (b) a priority-equal best-effort scheduler, (c) a
/// priority-first scheduler, and (d) the GSS hybrid. The demo prints
/// each schedule with a rough device-time estimate so the trade-off is
/// visible: priority-first serves demands earliest but triggers the
/// demand1/demand2 bank conflict; best-effort avoids all conflicts but
/// starves demand2; GSS does both jobs.
#include <cstdio>
#include <string>
#include <vector>

#include "noc/fc_gss.hpp"
#include "noc/flow_controller.hpp"
#include "sdram/config.hpp"

using namespace annoc;

namespace {

struct Request {
  const char* name;
  noc::Packet pkt;
};

std::vector<Request> fig1_requests() {
  auto mk = [](const char* name, BankId bank, RowId row, Cycle arrived,
               bool priority) {
    Request r;
    r.name = name;
    r.pkt.loc.bank = bank;
    r.pkt.loc.row = row;
    r.pkt.rw = RW::kRead;
    r.pkt.head_arrival = arrived;
    r.pkt.svc =
        priority ? ServiceClass::kPriority : ServiceClass::kBestEffort;
    r.pkt.flits = 4;
    return r;
  };
  // Fig. 1(a): BAs per the figure; all rows distinct except prefetch2
  // and request(video)2, which share a row (row-buffer hit pair).
  return {
      mk("demand1 ", 1, 100, 0, true),  mk("prefetch1", 2, 200, 1, false),
      mk("video1  ", 3, 300, 2, false), mk("demand2 ", 1, 101, 3, true),
      mk("prefetch2", 2, 201, 4, false), mk("video2  ", 2, 201, 5, false),
  };
}

/// Estimated execution time of a schedule on a simplified device: a
/// request takes 4 cycles of data; a bank conflict with any of the two
/// previous requests adds a reactivation penalty of 8 cycles.
int estimate_cycles(const std::vector<const Request*>& order) {
  int t = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    int penalty = 0;
    for (std::size_t back = 1; back <= 2 && back <= i; ++back) {
      const auto& prev = order[i - back]->pkt;
      const auto& cur = order[i]->pkt;
      if (prev.loc.bank == cur.loc.bank && prev.loc.row != cur.loc.row) {
        penalty = 8;  // bank conflict: deactivate + reactivate
      }
    }
    t += 4 + penalty;
  }
  return t;
}

int demand_finish(const std::vector<const Request*>& order) {
  int t = 0, finish = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    int penalty = 0;
    for (std::size_t back = 1; back <= 2 && back <= i; ++back) {
      const auto& prev = order[i - back]->pkt;
      const auto& cur = order[i]->pkt;
      if (prev.loc.bank == cur.loc.bank && prev.loc.row != cur.loc.row) {
        penalty = 8;
      }
    }
    t += 4 + penalty;
    if (order[i]->pkt.is_priority()) finish = t;
  }
  return finish;
}

void show(const char* title, const std::vector<const Request*>& order) {
  std::printf("%-34s:", title);
  for (const Request* r : order) std::printf(" %s", r->name);
  std::printf("\n%34s  total %d cycles, last demand done at %d cycles\n",
              "", estimate_cycles(order), demand_finish(order));
}

std::vector<const Request*> schedule_with(noc::FlowController& fc,
                                          std::vector<Request>& reqs) {
  // Register arrivals (tokens for GSS).
  std::vector<noc::Packet*> seen;
  for (Request& r : reqs) {
    fc.on_packet_arrival(r.pkt, seen, r.pkt.head_arrival);
    seen.push_back(&r.pkt);
  }
  std::vector<const Request*> order;
  std::vector<Request*> waiting;
  for (Request& r : reqs) waiting.push_back(&r);
  Cycle now = 10;
  while (!waiting.empty()) {
    std::vector<noc::Candidate> cands;
    std::vector<noc::Packet*> pool;
    for (std::size_t i = 0; i < waiting.size(); ++i) {
      cands.push_back({&waiting[i]->pkt, static_cast<std::uint32_t>(i)});
      pool.push_back(&waiting[i]->pkt);
    }
    const auto sel = fc.select(cands, pool, now);
    if (!sel) break;
    Request* granted = waiting[*sel];
    fc.on_scheduled(granted->pkt, now);
    order.push_back(granted);
    waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(*sel));
    now += granted->pkt.flits;
  }
  return order;
}

}  // namespace

int main() {
  std::printf(
      "Fig. 1 scheduling example — two demands (priority, bank 1 with\n"
      "different rows), two prefetches, two video requests (prefetch2 and\n"
      "video2 row-hit each other on bank 2).\n\n");

  // (b) priority-equal / best-effort: the SDRAM-aware scheduler of [4].
  {
    std::vector<Request> reqs = fig1_requests();
    auto fc = noc::make_flow_controller(noc::FlowControlKind::kSdramAware);
    show("(b) priority-equal (best effort)", schedule_with(*fc, reqs));
  }
  // (c) priority-first.
  {
    std::vector<Request> reqs = fig1_requests();
    auto fc = noc::make_flow_controller(noc::FlowControlKind::kPriorityFirst);
    show("(c) priority-first", schedule_with(*fc, reqs));
  }
  // (d) GSS hybrid.
  {
    std::vector<Request> reqs = fig1_requests();
    noc::GssParams params;
    params.pct = 2;  // moderate priority: the hybrid sweet spot for this trace
    params.timing = sdram::make_timing(sdram::DdrGeneration::kDdr2, 333.0);
    noc::GssFlowController fc(params, /*sti=*/false);
    show("(d) GSS hybrid (this paper)", schedule_with(fc, reqs));
  }

  std::printf(
      "\nReading the result: (c) schedules the two demands back to back on\n"
      "bank 1 with different rows — a bank conflict that stretches the\n"
      "total execution; (d) slips one other-bank request between them, so\n"
      "the demands still finish early while total execution time drops\n"
      "back toward the best-effort schedule (b). That is exactly the\n"
      "hybrid behaviour of Fig. 1(d).\n");
  return 0;
}
